"""Interop tests: survey artifacts written before the fault/expansion axes.

PR 6 appended ``faults`` and ``guest_size`` to the record schema and a
fourth segment to scenario ids.  Shard files and CSV/JSON artifacts written
*before* that must keep loading, merging and satisfying crash-resume — the
whole point of ``SurveyRecord.from_dict`` defaulting missing columns to
``None``.
"""

import json

import pytest

from repro.survey.runner import SurveyOptions, run_survey
from repro.survey.scenarios import Scenario, scenarios_for_suite
from repro.survey.store import (
    FIELDS,
    SurveyRecord,
    merge_shards,
    read_csv,
    read_json,
    write_csv,
    write_json,
)

pytestmark = pytest.mark.smoke

#: The record schema as it was before the fault/expansion columns landed.
PRE_PR6_FIELDS = tuple(field for field in FIELDS if field not in ("faults", "guest_size"))


def _strip_new_columns(path) -> None:
    """Rewrite a shard file as a pre-PR-6 writer would have produced it."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["records"] = [
        {key: row[key] for key in PRE_PR6_FIELDS} for row in payload["records"]
    ]
    path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")


class TestScenarioIdCompat:
    def test_plain_embedding_id_round_trips(self):
        scenario = Scenario("torus", (4, 6), "mesh", (2, 2, 2, 3))
        assert scenario.scenario_id == "torus:4,6->mesh:2,2,2,3"
        assert Scenario.from_id(scenario.scenario_id) == scenario

    def test_three_part_simulation_id_round_trips(self):
        scenario = Scenario(
            "torus", (3, 4), "mesh", (3, 4), strategy="bfs", traffic="transpose"
        )
        assert scenario.scenario_id == "torus:3,4->mesh:3,4|bfs|transpose"
        assert Scenario.from_id(scenario.scenario_id) == scenario

    def test_four_part_fault_id_round_trips_with_empty_traffic(self):
        scenario = Scenario("torus", (2, 3), "mesh", (3, 4), faults="n1l1s5")
        assert scenario.scenario_id == "torus:2,3->mesh:3,4|paper||n1l1s5"
        assert Scenario.from_id(scenario.scenario_id) == scenario
        assert Scenario.from_id(scenario.scenario_id).fault_spec().token == "n1l1s5"

    def test_every_suite_scenario_id_round_trips(self):
        for suite in ("smoke", "expansion", "faults"):
            for scenario in scenarios_for_suite(suite):
                assert Scenario.from_id(scenario.scenario_id) == scenario


class TestOldArtifactsLoad:
    def test_pre_pr6_json_loads_with_none_new_columns(self, tmp_path):
        record = SurveyRecord(
            scenario_id="torus:3,4->mesh:3,4",
            guest="torus:3,4",
            host="mesh:3,4",
            nodes=12,
            guest_edges=24,
            status="ok",
            strategy="same-shape",
            dilation=2,
            average_dilation=1.5,
        )
        path = write_json([record], tmp_path / "old.json")
        _strip_new_columns(path)
        [loaded] = read_json(path)
        assert loaded.scenario_id == record.scenario_id
        assert loaded.dilation == 2
        assert loaded.faults is None
        assert loaded.guest_size is None

    def test_old_and_new_shards_merge(self, tmp_path):
        old = write_json(
            [
                SurveyRecord(
                    scenario_id="a->b",
                    guest="a",
                    host="b",
                    nodes=4,
                    guest_edges=4,
                    status="ok",
                )
            ],
            tmp_path / "shard-0000.json",
        )
        _strip_new_columns(old)
        new = write_json(
            [
                SurveyRecord(
                    scenario_id="c->d|paper||n1l1s5",
                    guest="c",
                    host="d",
                    nodes=12,
                    guest_edges=7,
                    status="ok",
                    faults="n1l1s5",
                    guest_size=6,
                )
            ],
            tmp_path / "shard-0001.json",
        )
        merged = merge_shards([old, new])
        assert [r.scenario_id for r in merged] == ["a->b", "c->d|paper||n1l1s5"]
        assert merged[0].faults is None and merged[1].faults == "n1l1s5"

    def test_csv_round_trips_new_columns_and_their_absence(self, tmp_path):
        records = [
            SurveyRecord(
                scenario_id="x->y|paper||n2l0s3",
                guest="x",
                host="y",
                nodes=12,
                guest_edges=7,
                status="ok",
                dilation=3,
                average_dilation=1.25,
                faults="n2l0s3",
                guest_size=8,
            ),
            SurveyRecord(
                scenario_id="x->y",
                guest="x",
                host="y",
                nodes=12,
                guest_edges=24,
                status="unsupported",
                error="no construction",
            ),
        ]
        path = write_csv(records, tmp_path / "records.csv")
        loaded = read_csv(path)
        assert loaded == records


class TestResumeInterop:
    def test_pre_pr6_shard_files_satisfy_resume(self, tmp_path):
        scenarios = [
            Scenario("torus", (3, 4), "mesh", (3, 4)),
            Scenario("mesh", (2, 3, 4), "mesh", (4, 3, 2)),
        ]
        options = SurveyOptions(workers=1, shard_size=2, shard_dir=str(tmp_path))
        first = run_survey(scenarios, options)
        assert first.reused_shard_indices == []
        # Age the shard file back to the pre-PR-6 schema, then resume.
        _strip_new_columns(tmp_path / "shard-0000.json")
        second = run_survey(scenarios, options)
        assert second.reused_shard_indices == [0]
        assert [r.scenario_id for r in second.records] == [
            r.scenario_id for r in first.records
        ]
        for fresh, resumed in zip(first.records, second.records):
            assert resumed.dilation == fresh.dilation
            assert resumed.average_dilation == fresh.average_dilation
            # The aged file predates the new columns: they resume as None.
            assert resumed.faults is None and resumed.guest_size is None

    def test_changed_scenario_list_recomputes(self, tmp_path):
        scenarios = [Scenario("torus", (3, 4), "mesh", (3, 4))]
        options = SurveyOptions(workers=1, shard_size=1, shard_dir=str(tmp_path))
        run_survey(scenarios, options)
        other = [Scenario("torus", (4, 3), "mesh", (3, 4))]
        report = run_survey(other, options)
        assert report.reused_shard_indices == []
        assert report.records[0].scenario_id == "torus:4,3->mesh:3,4"


class TestNewSuitesEndToEnd:
    def test_expansion_suite_runs_and_persists(self, tmp_path):
        report = run_survey(
            scenarios_for_suite("expansion"), SurveyOptions(workers=1)
        )
        assert len(report.unsupported) == 2
        assert all(r.guest_size is not None for r in report.records)
        path = write_json(report.records, tmp_path / "expansion.json")
        assert read_json(path) == report.records

    def test_faults_suite_runs_and_persists(self, tmp_path):
        report = run_survey(scenarios_for_suite("faults"), SurveyOptions(workers=1))
        assert len(report.ok) == len(report.records)
        assert all(r.faults for r in report.records)
        simulated = [r for r in report.records if r.traffic]
        assert len(simulated) == 1 and simulated[0].makespan is not None
        path = write_csv(report.records, tmp_path / "faults.csv")
        assert read_csv(path) == report.records
