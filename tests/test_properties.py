"""Property-based tests (hypothesis) of the library's core invariants.

Each property corresponds to a lemma or theorem of the paper, exercised over
randomly drawn shapes rather than the fixed examples used by the unit tests.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.basic import (
    f_sequence,
    g_sequence,
    h_sequence,
    line_in_graph_embedding,
    ring_in_graph_embedding,
)
from repro.core.dispatch import embed, strategy_for
from repro.core.expansion import iter_expansion_factors
from repro.core.increasing import embed_increasing
from repro.core.lowering import embed_lowering_simple
from repro.core.reduction import find_simple_reduction
from repro.core.same_shape import same_shape_embedding
from repro.graphs.base import Mesh, Torus
from repro.numbering.radix import RadixBase
from repro.numbering.sequences import cyclic_spread, sequence_spread
from repro.utils.listops import product

from .conftest import small_shapes

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


# --------------------------------------------------------------------------- #
# Section 3: the basic sequences
# --------------------------------------------------------------------------- #
class TestBasicSequenceProperties:
    @relaxed
    @given(small_shapes(max_dim=4, max_len=5))
    def test_f_is_a_unit_spread_bijection(self, shape):
        """Lemmas 10-12 for arbitrary radix bases."""
        seq = f_sequence(shape)
        assert len(set(seq)) == RadixBase(shape).size
        assert sequence_spread(seq) == 1
        assert sequence_spread(seq, metric="torus", shape=shape) == 1

    @relaxed
    @given(small_shapes(max_dim=4, max_len=5))
    def test_g_is_a_cyclic_spread_two_bijection(self, shape):
        """Lemma 16 for arbitrary radix bases."""
        seq = g_sequence(shape)
        assert len(set(seq)) == RadixBase(shape).size
        assert cyclic_spread(seq) <= 2

    @relaxed
    @given(small_shapes(max_dim=4, max_len=5))
    def test_h_has_unit_cyclic_torus_spread(self, shape):
        """Lemma 27 for arbitrary radix bases."""
        seq = h_sequence(shape)
        assert len(set(seq)) == RadixBase(shape).size
        assert cyclic_spread(seq, metric="torus", shape=shape) == 1

    @relaxed
    @given(small_shapes(min_dim=2, max_dim=4, max_len=5))
    def test_h_has_unit_cyclic_mesh_spread_when_first_length_even(self, shape):
        """Lemma 23: the δm statement needs d >= 2 and an even first dimension."""
        shape = (shape[0] + shape[0] % 2,) + shape[1:]
        seq = h_sequence(shape)
        assert cyclic_spread(seq) == 1


# --------------------------------------------------------------------------- #
# Section 3: the basic embeddings as embeddings
# --------------------------------------------------------------------------- #
class TestBasicEmbeddingProperties:
    @relaxed
    @given(small_shapes(max_dim=3, max_len=5), st.booleans())
    def test_line_embedding_dilation_one(self, shape, use_torus):
        """Theorem 13."""
        host = Torus(shape) if use_torus else Mesh(shape)
        embedding = line_in_graph_embedding(host)
        embedding.validate()
        assert embedding.dilation() == 1

    @relaxed
    @given(small_shapes(max_dim=3, max_len=5), st.booleans())
    def test_ring_embedding_matches_section3(self, shape, use_torus):
        """Theorems 17, 24 and 28."""
        host = Torus(shape) if use_torus else Mesh(shape)
        embedding = ring_in_graph_embedding(host)
        embedding.validate()
        size = host.size
        if use_torus:
            assert embedding.dilation() == 1
        elif size % 2 == 0 and host.dimension >= 2:
            assert embedding.dilation() == 1
        elif size > 2:
            assert embedding.dilation() == 2


# --------------------------------------------------------------------------- #
# Section 4: generalized embeddings
# --------------------------------------------------------------------------- #
class TestGeneralizedEmbeddingProperties:
    @relaxed
    @given(small_shapes(min_dim=2, max_dim=3, max_len=4), st.booleans(), st.booleans())
    def test_same_shape_embedding(self, shape, guest_torus, host_torus):
        """Lemma 36 over random shapes and kinds."""
        guest = Torus(shape) if guest_torus else Mesh(shape)
        host = Torus(shape) if host_torus else Mesh(shape)
        embedding = same_shape_embedding(guest, host)
        embedding.validate()
        limit = 2 if (guest.is_torus and host.is_mesh and not guest.is_hypercube) else 1
        assert embedding.dilation() <= limit

    @relaxed
    @given(small_shapes(min_dim=2, max_dim=3, max_len=4), st.booleans(), st.booleans())
    def test_increasing_dimension_into_full_factorization(self, shape, guest_torus, host_torus):
        """Theorem 32: expand every length into its prime factorization."""
        from repro.utils.intmath import prime_factorization

        target = []
        for length in shape:
            for prime, exponent in prime_factorization(length):
                target.extend([prime] * exponent)
        target = tuple(target)
        if len(target) <= len(shape):
            return
        guest = Torus(shape) if guest_torus else Mesh(shape)
        host = Torus(target) if host_torus else Mesh(target)
        embedding = embed_increasing(guest, host)
        embedding.validate()
        if guest.is_mesh or guest.is_hypercube or host.is_torus:
            assert embedding.dilation() == 1
        else:
            assert embedding.dilation() <= 2

    @relaxed
    @given(small_shapes(min_dim=3, max_dim=4, max_len=4), st.booleans(), st.booleans())
    def test_lowering_dimension_by_pairing(self, shape, guest_torus, host_torus):
        """Theorem 39: collapse the first two dimensions into one."""
        target = (shape[0] * shape[1],) + shape[2:]
        guest = Torus(shape) if guest_torus else Mesh(shape)
        host = Torus(target) if host_torus else Mesh(target)
        factor = find_simple_reduction(shape, target)
        assert factor is not None
        embedding = embed_lowering_simple(guest, host, factor)
        embedding.validate()
        predicted = factor.dilation()
        if guest.is_torus and host.is_mesh and not guest.is_hypercube:
            assert embedding.dilation() <= 2 * predicted
        else:
            assert embedding.dilation() == predicted


# --------------------------------------------------------------------------- #
# Shape-analysis invariants
# --------------------------------------------------------------------------- #
class TestFactorSearchProperties:
    @relaxed
    @given(small_shapes(max_dim=3, max_len=6))
    def test_expansion_factors_are_always_valid_witnesses(self, shape):
        from repro.utils.intmath import prime_factorization

        target = []
        for length in shape:
            for prime, exponent in prime_factorization(length):
                target.extend([prime] * exponent)
        target = tuple(target)
        if len(target) <= len(shape):
            return
        for factor in iter_expansion_factors(shape, target, limit=5):
            assert factor.expands(shape, target)
            assert product(factor.flattened) == product(shape)

    @relaxed
    @given(small_shapes(min_dim=2, max_dim=4, max_len=5))
    def test_simple_reduction_factor_round_trip(self, shape):
        target = (product(shape),)
        factor = find_simple_reduction(shape, target)
        assert factor is not None
        assert factor.reduces(shape, target)
        assert factor.dilation() == product(shape) // max(shape)


# --------------------------------------------------------------------------- #
# Dispatcher-level invariant: whatever strategy is chosen, the embedding is valid
# and never exceeds its predicted dilation.
# --------------------------------------------------------------------------- #
class TestDispatchProperties:
    @relaxed
    @given(
        small_shapes(max_dim=3, max_len=5),
        st.booleans(),
        st.booleans(),
        st.integers(min_value=0, max_value=3),
    )
    def test_embed_is_valid_and_within_prediction(self, shape, guest_torus, host_torus, variant):
        guest = Torus(shape) if guest_torus else Mesh(shape)
        size = guest.size
        # Pick a host shape of the same size: the shape itself, its reversal,
        # the fully factored shape, or the single-dimension collapse.
        from repro.utils.intmath import prime_factorization

        if variant == 0:
            host_shape = shape
        elif variant == 1:
            host_shape = tuple(reversed(shape))
        elif variant == 2:
            host_shape = tuple(
                prime
                for length in shape
                for prime, exponent in prime_factorization(length)
                for _ in range(exponent)
            )
        else:
            host_shape = (size,)
        if size < 2 or math.prod(host_shape) != size:
            return
        host = Torus(host_shape) if host_torus else Mesh(host_shape)
        if strategy_for(guest, host) == "unsupported":
            return
        embedding = embed(guest, host)
        embedding.validate()
        if embedding.predicted_dilation is not None:
            assert embedding.dilation() <= embedding.predicted_dilation
