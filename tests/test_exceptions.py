"""Unit tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    InvalidEmbeddingError,
    InvalidRadixError,
    InvalidShapeError,
    NoExpansionError,
    NoReductionError,
    ReproError,
    ShapeMismatchError,
    SimulationError,
    UnsupportedEmbeddingError,
)

pytestmark = pytest.mark.smoke


ALL_EXCEPTIONS = [
    InvalidShapeError,
    InvalidRadixError,
    InvalidEmbeddingError,
    ShapeMismatchError,
    NoExpansionError,
    NoReductionError,
    UnsupportedEmbeddingError,
    SimulationError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exception_class", ALL_EXCEPTIONS)
    def test_every_exception_derives_from_repro_error(self, exception_class):
        assert issubclass(exception_class, ReproError)

    def test_value_errors_are_value_errors(self):
        for exception_class in ALL_EXCEPTIONS:
            if exception_class is SimulationError:
                assert issubclass(exception_class, RuntimeError)
            else:
                assert issubclass(exception_class, ValueError)

    def test_single_except_clause_catches_library_failures(self):
        from repro.graphs.base import Mesh

        with pytest.raises(ReproError):
            Mesh((1, 2))

    def test_library_failures_are_catchable_by_builtin_categories(self):
        from repro.graphs.base import Mesh
        from repro.core.dispatch import embed

        with pytest.raises(ValueError):
            Mesh((0,))
        with pytest.raises(ValueError):
            embed(Mesh((2, 3)), Mesh((2, 2)))
