"""Tests for the construction cache: content addressing, sharing, identity."""

import json
import pickle
import warnings

import pytest

from repro.core.dispatch import embed, strategy_for
from repro.exceptions import UnsupportedEmbeddingError
from repro.graphs.base import Mesh, Torus
from repro.runtime import ConstructionCache, use_context
from repro.runtime.cache import embedding_cache_key, family_cache_key

PAIR = (Torus((4, 6)), Mesh((2, 2, 2, 3)))


class TestContentAddressing:
    def test_embedding_key_format(self):
        guest, host = PAIR
        assert embedding_cache_key("increasing", guest, host) == (
            "embedding",
            "increasing",
            "torus",
            (4, 6),
            "mesh",
            (2, 2, 2, 3),
        )

    def test_family_key_format(self):
        guest, host = PAIR
        assert family_cache_key(guest, host) == (
            "family",
            "torus",
            (4, 6),
            "mesh",
            (2, 2, 2, 3),
        )

    def test_dispatcher_memoizes_under_the_family_key(self):
        guest, host = PAIR
        cache = ConstructionCache()
        with use_context(cache=cache):
            embed(guest, host)
        family = strategy_for(guest, host)
        assert embedding_cache_key(family, guest, host) in cache
        assert cache.fetch_family(guest, host) == (family, None)
        assert cache.construction_count == 1 and len(cache) == 2

    def test_hit_and_miss_counters(self):
        guest, host = PAIR
        cache = ConstructionCache()
        with use_context(cache=cache):
            embed(guest, host)
            embed(guest, host)
            embed(guest, host)
        assert cache.misses == 1
        assert cache.hits == 2


class TestReconstruction:
    def test_cached_embedding_is_node_for_node_identical(self):
        guest, host = PAIR
        cache = ConstructionCache()
        with use_context(cache=cache):
            built = embed(guest, host)
            cached = embed(guest, host)
        assert cached is not built
        assert cached.strategy == built.strategy
        assert cached.predicted_dilation == built.predicted_dilation
        assert cached.notes == built.notes
        assert cached.mapping == built.mapping
        cached.validate()

    def test_cache_entries_are_backend_agnostic(self):
        # Built under the array backend, consumed under the loop backend
        # (and vice versa): the payload must rehydrate identically.
        guest, host = PAIR
        cache = ConstructionCache()
        with use_context(backend="array", cache=cache):
            array_built = embed(guest, host)
        with use_context(backend="loop", cache=cache):
            loop_rehydrated = embed(guest, host)
        assert cache.hits == 1
        assert loop_rehydrated._host_indices is None  # dict-backed rebuild
        assert loop_rehydrated.mapping == array_built.mapping
        assert loop_rehydrated.strategy == array_built.strategy

    def test_unsupported_pairs_raise_identically_with_a_cache(self):
        guest, host = Mesh((4, 6)), Mesh((3, 8))
        assert strategy_for(guest, host) == "unsupported"
        cache = ConstructionCache()
        with pytest.raises(UnsupportedEmbeddingError) as bare:
            embed(guest, host)
        with use_context(cache=cache):
            with pytest.raises(UnsupportedEmbeddingError) as cold:
                embed(guest, host)
            with pytest.raises(UnsupportedEmbeddingError) as warm:
                embed(guest, host)
        assert str(cold.value) == str(bare.value) == str(warm.value)
        assert cache.fetch_family(guest, host) == ("unsupported", str(bare.value))


class TestSharingAndPersistence:
    def test_snapshot_warm_starts_a_new_cache(self):
        guest, host = PAIR
        parent = ConstructionCache()
        with use_context(cache=parent):
            embed(guest, host)
        worker = ConstructionCache(parent.snapshot())
        with use_context(cache=worker):
            embed(guest, host)
        assert worker.hits == 1 and worker.misses == 0

    def test_merge_counts_new_entries_only(self):
        guest, host = PAIR
        a, b = ConstructionCache(), ConstructionCache()
        with use_context(cache=a):
            embed(guest, host)
        assert b.merge(a.snapshot()) == len(a)
        assert b.merge(a.snapshot()) == 0

    def test_pickle_round_trip(self):
        guest, host = PAIR
        cache = ConstructionCache()
        with use_context(cache=cache):
            built = embed(guest, host)
        clone = pickle.loads(pickle.dumps(cache))
        with use_context(cache=clone):
            rehydrated = embed(guest, host)
        assert clone.hits == 1
        assert rehydrated.mapping == built.mapping

    def test_save_and_load(self, tmp_path):
        guest, host = PAIR
        cache = ConstructionCache()
        with use_context(cache=cache):
            embed(guest, host)
        path = cache.save(tmp_path / "cache.pkl")
        loaded = ConstructionCache.load(path)
        assert len(loaded) == len(cache)
        with use_context(cache=loaded):
            embed(guest, host)
        assert loaded.hits == 1

    def test_load_missing_file_yields_empty_cache_silently(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(ConstructionCache.load(tmp_path / "absent.pkl")) == 0

    def test_load_corrupt_file_warns_and_starts_cold(self, tmp_path):
        torn = tmp_path / "torn.pkl"
        torn.write_bytes(b"\x80\x04 this is not a pickle")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert len(ConstructionCache.load(torn)) == 0
        not_a_dict = tmp_path / "list.pkl"
        not_a_dict.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.warns(RuntimeWarning, match="not a cache dict"):
            assert len(ConstructionCache.load(not_a_dict)) == 0


class TestGoldenIdentityWithCaching:
    def test_sim_map_golden_rows_byte_identical_with_cache_on_and_off(self):
        # The pinned SIM-MAP table must serialize to the same bytes whether
        # the constructions come from the dispatcher or from a warm cache.
        from tests.test_golden_tables import TABLES, load_fixture

        def rows_json():
            return json.dumps(TABLES["tab_sim_map"](), sort_keys=True)

        bare = rows_json()
        cache = ConstructionCache()
        with use_context(cache=cache):
            cold = rows_json()
            warm = rows_json()
        assert cache.hits > 0  # the warm pass really came from the cache
        assert bare == cold == warm
        fixture = json.dumps(
            json.loads(json.dumps(TABLES["tab_sim_map"]())), sort_keys=True
        )
        pinned = json.dumps(load_fixture("tab_sim_map")["rows"], sort_keys=True)
        assert fixture == pinned

    def test_exhaustive_survey_records_identical_with_cache(self):
        from repro.survey import SurveyOptions, run_survey, scenarios_for_suite

        scenarios = scenarios_for_suite("smoke")
        bare = run_survey(scenarios, SurveyOptions(workers=1))
        cache = ConstructionCache()
        with use_context(cache=cache):
            cold = run_survey(scenarios, SurveyOptions(workers=1))
            warm = run_survey(scenarios, SurveyOptions(workers=1))
        strip = lambda r: {**r.as_dict(), "elapsed_seconds": None}
        assert [strip(r) for r in bare.records] == [strip(r) for r in cold.records]
        assert [strip(r) for r in cold.records] == [strip(r) for r in warm.records]
        assert warm.cache_entries == cache.construction_count
