"""Differential tests for the batch construction kernels.

Every kernel in :mod:`repro.numbering.batch` is checked element-for-element
against its scalar reference in :mod:`repro.core.basic` /
:mod:`repro.core.lowering` — exhaustively on fixed shapes and on random
shapes via hypothesis.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.basic import f_value, g_value, h_value, r_value, t_value
from repro.core.lowering import U_value
from repro.core.reduction import SimpleReductionFactor
from repro.core.same_shape import t_vector_value
from repro.numbering.arrays import digits_to_indices, indices_to_digits
from repro.numbering.batch import (
    f_digits,
    f_flat,
    g_digits,
    g_flat,
    group_collapse,
    h_digits,
    h_flat,
    r_digits,
    t_columns,
    t_indices,
)

from .strategies import small_shapes

SHAPES = [
    (2,),
    (5,),
    (2, 2),
    (4, 2),
    (3, 5),
    (4, 2, 3),
    (2, 3, 2, 5),
    (3, 3, 3),
    (2, 2, 2, 2, 2),
    (6, 2),
    (7, 2, 2),
]


@pytest.mark.parametrize("n", range(1, 12))
def test_t_indices_matches_t_value(n):
    assert t_indices(n, np.arange(n)).tolist() == [t_value(n, x) for x in range(n)]


@pytest.mark.parametrize("shape", SHAPES)
def test_f_digits_matches_f_value(shape):
    n = math.prod(shape)
    got = f_digits(shape, np.arange(n))
    assert got.tolist() == [list(f_value(shape, x)) for x in range(n)]
    assert f_flat(shape, np.arange(n)).tolist() == digits_to_indices(got, shape).tolist()


@pytest.mark.parametrize("shape", SHAPES)
def test_g_digits_matches_g_value(shape):
    n = math.prod(shape)
    assert g_digits(shape, np.arange(n)).tolist() == [
        list(g_value(shape, x)) for x in range(n)
    ]
    assert g_flat(shape, np.arange(n)).tolist() == [
        digits_to_indices(np.asarray([g_value(shape, x)]), shape)[0] for x in range(n)
    ]


@pytest.mark.parametrize("shape", [s for s in SHAPES if len(s) == 2])
def test_r_digits_matches_r_value(shape):
    n = math.prod(shape)
    assert r_digits(shape, np.arange(n)).tolist() == [
        list(r_value(shape, x)) for x in range(n)
    ]


@pytest.mark.parametrize("shape", SHAPES)
def test_h_digits_matches_h_value(shape):
    n = math.prod(shape)
    assert h_digits(shape, np.arange(n)).tolist() == [
        list(h_value(shape, x)) for x in range(n)
    ]
    assert h_flat(shape, np.arange(n)).dtype == np.int64


@pytest.mark.parametrize("shape", [s for s in SHAPES if len(s) >= 2])
def test_t_columns_matches_t_vector_value(shape):
    n = math.prod(shape)
    digits = indices_to_digits(np.arange(n), shape)
    assert t_columns(shape, digits).tolist() == [
        list(t_vector_value(shape, tuple(row))) for row in digits.tolist()
    ]


@pytest.mark.parametrize(
    "groups",
    [((4, 2), (3, 3)), ((2, 2, 2), (5,)), ((6,), (2, 2)), ((3,), (3,), (3,))],
)
def test_group_collapse_matches_U_value(groups):
    factor = SimpleReductionFactor(tuple(groups))
    shape = factor.flattened
    n = math.prod(shape)
    digits = indices_to_digits(np.arange(n), shape)
    assert group_collapse(digits, groups).tolist() == [
        list(U_value(factor, tuple(row))) for row in digits.tolist()
    ]


@settings(max_examples=40, deadline=None)
@given(shape=small_shapes())
def test_batch_sequences_match_scalar_on_random_shapes(shape):
    n = math.prod(shape)
    x = np.arange(n)
    assert f_digits(shape, x).tolist() == [list(f_value(shape, i)) for i in range(n)]
    assert g_digits(shape, x).tolist() == [list(g_value(shape, i)) for i in range(n)]
    assert h_digits(shape, x).tolist() == [list(h_value(shape, i)) for i in range(n)]


@settings(max_examples=40, deadline=None)
@given(shape=small_shapes())
def test_batch_sequences_are_permutations(shape):
    """Every kernel output is a bijection of [n] — the injectivity invariant."""
    n = math.prod(shape)
    x = np.arange(n)
    for flat in (f_flat(shape, x), g_flat(shape, x), h_flat(shape, x)):
        assert sorted(flat.tolist()) == list(range(n))


def test_kernel_shape_validation():
    with pytest.raises(ValueError):
        r_digits((2, 2, 2), np.arange(8))
    with pytest.raises(ValueError):
        t_columns((2, 2), np.zeros((4, 3), dtype=np.int64))
    with pytest.raises(ValueError):
        group_collapse(np.zeros((4, 3), dtype=np.int64), ((2, 2),))
    with pytest.raises(ValueError):
        t_indices(0, np.arange(1))
