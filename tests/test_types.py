"""Unit tests for shared value types."""

import pytest

from repro.exceptions import InvalidShapeError
from repro.types import (
    GraphKind,
    ShapedGraphSpec,
    as_shape,
    is_hypercube_shape,
    is_square_shape,
    shape_size,
)

pytestmark = pytest.mark.smoke


class TestAsShape:
    def test_valid_shape(self):
        assert as_shape([4, 2, 3]) == (4, 2, 3)

    def test_rejects_length_one(self):
        with pytest.raises(InvalidShapeError):
            as_shape((4, 1, 3))

    def test_rejects_empty(self):
        with pytest.raises(InvalidShapeError):
            as_shape(())

    def test_rejects_non_integer(self):
        with pytest.raises(InvalidShapeError):
            as_shape((4, 2.5))

    def test_rejects_bool(self):
        with pytest.raises(InvalidShapeError):
            as_shape((True, 2))


class TestShapePredicates:
    def test_shape_size(self):
        assert shape_size((4, 2, 3)) == 24

    def test_is_square(self):
        assert is_square_shape((5, 5, 5))
        assert not is_square_shape((5, 5, 4))

    def test_is_hypercube(self):
        assert is_hypercube_shape((2, 2, 2))
        assert not is_hypercube_shape((2, 4))


class TestGraphKind:
    def test_values(self):
        assert GraphKind("torus").is_torus
        assert GraphKind("mesh").is_mesh
        assert not GraphKind.TORUS.is_mesh


class TestShapedGraphSpec:
    def test_properties(self):
        spec = ShapedGraphSpec(GraphKind.TORUS, (4, 2, 3))
        assert spec.dimension == 3
        assert spec.size == 24
        assert spec.is_torus and not spec.is_mesh
        assert not spec.is_square
        assert not spec.is_hypercube

    def test_hypercube_spec(self):
        spec = ShapedGraphSpec("mesh", (2, 2, 2, 2))
        assert spec.is_hypercube and spec.is_square

    def test_invalid_shape_rejected(self):
        with pytest.raises(InvalidShapeError):
            ShapedGraphSpec(GraphKind.MESH, (1, 2))

    def test_equality_and_hash(self):
        a = ShapedGraphSpec(GraphKind.MESH, (3, 3))
        b = ShapedGraphSpec("mesh", [3, 3])
        assert a == b
        assert hash(a) == hash(b)
