"""Tests for the serving tier: protocol, coalescer, service, HTTP, client.

The load-bearing contract is **byte-identity**: a response served through the
coalesced batched path must carry exactly the record the per-request survey
reference (:func:`repro.survey.runner.evaluate_scenario`) produces for the
same scenario — ``elapsed_seconds`` timing aside, the repo-wide convention.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.runtime import ConstructionCache
from repro.service import (
    CoalescerClosed,
    ProtocolError,
    ReproService,
    RequestCoalescer,
    ServiceClient,
    ServiceError,
    ServiceRequest,
    parse_graph_spec,
    serve,
)
from repro.survey.runner import SurveyOptions, evaluate_scenario

pytestmark = pytest.mark.smoke


def strip(record_dict):
    return {
        key: value for key, value in record_dict.items() if key != "elapsed_seconds"
    }


def reference_record(request: ServiceRequest):
    options = SurveyOptions(workers=1, with_congestion=request.congestion)
    return evaluate_scenario(request.scenario(), options)


class TestProtocol:
    def test_parse_graph_spec_kinds_and_conveniences(self):
        assert parse_graph_spec("torus:4,6") == ("torus", (4, 6))
        assert parse_graph_spec("mesh: 2,2,3") == ("mesh", (2, 2, 3))
        assert parse_graph_spec("ring:12") == ("torus", (12,))
        assert parse_graph_spec("line:7") == ("mesh", (7,))
        assert parse_graph_spec("hypercube:3") == ("torus", (2, 2, 2))

    @pytest.mark.parametrize(
        "bad", ["blob", "cube:2,2", "torus:", "torus:0,4", "torus:a,b"]
    )
    def test_parse_graph_spec_rejects(self, bad):
        with pytest.raises(ProtocolError):
            parse_graph_spec(bad)

    def test_request_validation(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            ServiceRequest(op="teleport", guest="torus:4,6", host="mesh:4,6")
        with pytest.raises(ProtocolError, match="could not parse"):
            ServiceRequest(op="embed", guest="blob", host="mesh:4,6")
        with pytest.raises(ProtocolError, match="boolean"):
            ServiceRequest(
                op="embed", guest="torus:4,6", host="mesh:4,6", congestion="yes"
            )

    def test_from_dict_rejects_stray_and_missing_fields(self):
        with pytest.raises(ProtocolError, match="unknown request field"):
            ServiceRequest.from_dict(
                {"op": "embed", "guest": "torus:4,6", "host": "mesh:4,6", "spin": 1}
            )
        with pytest.raises(ProtocolError, match="missing required"):
            ServiceRequest.from_dict({"op": "embed", "guest": "torus:4,6"})
        with pytest.raises(ProtocolError, match="JSON object"):
            ServiceRequest.from_dict(["embed"])

    def test_scenario_conversion(self):
        embed = ServiceRequest(op="embed", guest="torus:4,6", host="mesh:2,2,2,3")
        scenario = embed.scenario()
        assert scenario.scenario_id == "torus:4,6->mesh:2,2,2,3"
        assert not scenario.traffic
        simulate = ServiceRequest(
            op="simulate",
            guest="torus:4,4",
            host="mesh:2,2,2,2",
            strategy="bfs",
            traffic="transpose",
        )
        assert (
            simulate.scenario().scenario_id == "torus:4,4->mesh:2,2,2,2|bfs|transpose"
        )

    def test_signature_is_the_batch_grouping_key(self):
        a = ServiceRequest(op="embed", guest="torus:4,6", host="mesh:2,2,2,3")
        b = ServiceRequest(
            op="simulate", guest="torus:4,6", host="mesh:2,2,2,3", traffic="transpose"
        )
        assert a.signature == b.signature

    def test_round_trip_dict(self):
        request = ServiceRequest(op="embed", guest="torus:4,6", host="mesh:4,6")
        assert ServiceRequest.from_dict(request.as_dict()) == request


class TestCoalescer:
    def test_concurrent_submissions_coalesce_into_one_batch(self):
        seen = []

        def evaluate(batch):
            seen.append(len(batch))
            return [item * 10 for item in batch]

        with RequestCoalescer(evaluate, window=0.25, max_batch=64) as coalescer:
            with ThreadPoolExecutor(8) as pool:
                futures = list(pool.map(coalescer.submit, range(8)))
            results = sorted(future.result(timeout=10) for future in futures)
        assert results == [0, 10, 20, 30, 40, 50, 60, 70]
        assert max(seen) > 1  # the window really grouped concurrent requests
        stats = coalescer.batch_stats()
        assert stats["coalesced_batches"] >= 1
        assert stats["max_batch_size"] == max(seen)

    def test_max_batch_caps_a_batch(self):
        sizes = []
        release = threading.Event()

        def evaluate(batch):
            release.wait(5)
            sizes.append(len(batch))
            return list(batch)

        with RequestCoalescer(evaluate, window=5.0, max_batch=3) as coalescer:
            futures = [coalescer.submit(index) for index in range(3)]
            release.set()
            for future in futures:
                future.result(timeout=10)
        assert sizes[0] == 3  # dispatched at the cap, not after the window

    def test_evaluator_exception_fails_the_batch_futures(self):
        def evaluate(batch):
            raise RuntimeError("kernel exploded")

        with RequestCoalescer(evaluate, window=0.01) as coalescer:
            future = coalescer.submit("request")
            with pytest.raises(RuntimeError, match="kernel exploded"):
                future.result(timeout=10)

    def test_result_count_mismatch_fails_the_batch(self):
        with RequestCoalescer(lambda batch: [], window=0.01) as coalescer:
            future = coalescer.submit("request")
            with pytest.raises(RuntimeError, match="0 results"):
                future.result(timeout=10)

    def test_submit_after_close_raises(self):
        coalescer = RequestCoalescer(lambda batch: list(batch), window=0.01)
        coalescer.close()
        with pytest.raises(CoalescerClosed):
            coalescer.submit("late")
        coalescer.close()  # idempotent


EMBED = ServiceRequest(op="embed", guest="torus:4,6", host="mesh:2,2,2,3")
EMBED_CONGESTION = ServiceRequest(
    op="embed", guest="torus:4,6", host="mesh:2,2,2,3", congestion=True
)
SIMULATE = ServiceRequest(
    op="simulate", guest="torus:4,4", host="mesh:2,2,2,2", traffic="transpose"
)
UNSUPPORTED = ServiceRequest(op="embed", guest="mesh:4,6", host="mesh:3,8")


class TestServiceDifferential:
    @pytest.mark.parametrize(
        "request_", [EMBED, EMBED_CONGESTION, SIMULATE, UNSUPPORTED], ids=str
    )
    def test_response_byte_identical_to_reference_path(self, request_):
        with ReproService(window=0.001) as service:
            record, batch_size = service.handle(request_)
        assert batch_size >= 1
        assert strip(record.as_dict()) == strip(reference_record(request_).as_dict())

    def test_coalesced_batch_byte_identical_to_reference(self):
        requests = [EMBED, SIMULATE, EMBED_CONGESTION, UNSUPPORTED] * 4
        with ReproService(window=0.25, max_batch=64) as service:
            with ThreadPoolExecutor(8) as pool:
                futures = [pool.submit(service.handle, req) for req in requests]
                outcomes = [future.result(timeout=30) for future in futures]
        assert service.coalescer.batch_stats()["max_batch_size"] > 1
        for request_, (record, _) in zip(requests, outcomes):
            assert strip(record.as_dict()) == strip(
                reference_record(request_).as_dict()
            )

    def test_resident_cache_warms_across_requests(self):
        with ReproService(window=0.001) as service:
            service.handle(EMBED)
            service.handle(EMBED)
            cache = service.context.cache
            assert cache is not None and cache.hits > 0


class TestCacheSnapshots:
    def test_periodic_snapshot_and_warm_restart(self, tmp_path):
        path = tmp_path / "service-cache.pkl"
        with ReproService(
            window=0.001, cache_path=str(path), snapshot_interval=0.0
        ) as service:
            service.handle(EMBED)
            deadline = time.monotonic() + 10
            while not path.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
        assert path.exists()
        warm = ConstructionCache.load(path)
        assert warm.construction_count >= 1
        with ReproService(window=0.001, cache_path=str(path)) as restarted:
            restarted.handle(EMBED)
            cache = restarted.context.cache
            assert cache is not None and cache.hits > 0  # warm from the snapshot

    def test_close_takes_a_final_snapshot(self, tmp_path):
        path = tmp_path / "final.pkl"
        service = ReproService(
            window=0.001, cache_path=str(path), snapshot_interval=3600
        )
        service.handle(EMBED)
        assert not path.exists()  # interval far away: no periodic snapshot yet
        service.close()
        assert ConstructionCache.load(path).construction_count >= 1


@pytest.fixture(scope="class")
def http_service():
    service = ReproService(window=0.02)
    server = serve(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
    client.wait_until_ready()
    try:
        yield service, client, f"http://{host}:{port}"
    finally:
        client.close()
        server.shutdown()
        server.server_close()
        service.close()


class TestHTTPEndToEnd:
    def test_embed_round_trip(self, http_service):
        _, client, _ = http_service
        response = client.embed("torus:4,6", "mesh:2,2,2,3")
        assert response["ok"] and response["record"]["dilation"] == 1
        assert strip(response["record"]) == strip(reference_record(EMBED).as_dict())

    def test_simulate_round_trip(self, http_service):
        _, client, _ = http_service
        response = client.simulate("torus:4,4", "mesh:2,2,2,2", traffic="transpose")
        assert response["record"]["status"] == "ok"
        assert response["record"]["makespan"] is not None

    def test_invoke_with_explicit_op(self, http_service):
        _, client, _ = http_service
        response = client.invoke(
            {"op": "embed", "guest": "ring:12", "host": "mesh:3,4"}
        )
        assert response["record"]["status"] == "ok"

    def test_concurrent_http_requests_coalesce(self, http_service):
        service, _, url = http_service

        def fire(_):
            with ServiceClient(url, timeout=30.0) as client:
                return client.embed("torus:4,6", "mesh:2,2,2,3")

        with ThreadPoolExecutor(8) as pool:
            responses = list(pool.map(fire, range(12)))
        assert all(response["record"]["dilation"] == 1 for response in responses)
        assert any(response["meta"]["coalesced"] for response in responses)
        assert service.coalescer.batch_stats()["max_batch_size"] > 1

    def test_stats_document(self, http_service):
        _, client, _ = http_service
        client.embed("torus:4,6", "mesh:2,2,2,3")
        stats = client.stats()
        assert stats["requests"] >= 1
        assert stats["latency_ms"]["p50"] >= 0
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"]
        assert stats["coalescer"]["batches"] >= 1
        assert stats["cache"]["constructions"] >= 1
        assert stats["backend"] in ("array", "loop")

    def test_health(self, http_service):
        _, client, _ = http_service
        assert client.health()["ok"] is True

    def test_unknown_path_is_404(self, http_service):
        _, client, _ = http_service
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_malformed_request_is_400(self, http_service):
        _, client, _ = http_service
        with pytest.raises(ServiceError) as excinfo:
            client.invoke({"op": "embed", "guest": "blob", "host": "mesh:4,6"})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.invoke({"op": "embed", "guest": "torus:4,6"})
        assert excinfo.value.status == 400

    def test_client_unreachable_server(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(OSError):
            client.embed("torus:4,6", "mesh:4,6")


class TestServeDaemon:
    def test_sigterm_shuts_down_cleanly_with_final_snapshot(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (
                str(Path(repro.__file__).resolve().parents[1]),
                env.get("PYTHONPATH"),
            )
            if part
        )
        cache = tmp_path / "serve-cache.pkl"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--cache",
                str(cache),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on http://" in banner
            url = banner.split()[4]
            with ServiceClient(url, timeout=30.0) as client:
                client.wait_until_ready(timeout=30.0)
                assert client.embed("torus:4,6", "mesh:2,2,2,3")["ok"]
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        output = process.stdout.read()
        assert "draining" in output
        assert "shutdown complete" in output
        assert ConstructionCache.load(cache).construction_count >= 1


class TestInvokeCLI:
    def test_invoke_against_live_server(self, http_service, capsys):
        from repro.cli import main

        _, _, url = http_service
        assert (
            main(
                [
                    "invoke",
                    "embed",
                    "--url",
                    url,
                    "--guest",
                    "torus:4,6",
                    "--host",
                    "mesh:2,2,2,3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "dilation" in out and "batch of" in out
        assert main(["invoke", "stats", "--url", url]) == 0
        assert "coalescer" in capsys.readouterr().out

    def test_invoke_requires_guest_and_host(self, capsys):
        from repro.cli import main

        assert main(["invoke", "embed", "--url", "http://127.0.0.1:1"]) == 2
        assert "requires --guest" in capsys.readouterr().err

    def test_invoke_unreachable_server_fails_cleanly(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "invoke",
                    "embed",
                    "--url",
                    "http://127.0.0.1:1",
                    "--timeout",
                    "0.5",
                    "--guest",
                    "torus:4,6",
                    "--host",
                    "mesh:4,6",
                ]
            )
            == 1
        )
        assert "could not reach" in capsys.readouterr().err
