"""Unit tests for square-graph embeddings (Section 5, Theorems 48-53)."""

import math

import pytest

from repro.core.square import (
    embed_square,
    embed_square_increasing,
    embed_square_lowering,
    predicted_square_dilation,
    square_lowering_intermediate_shapes,
)
from repro.exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from repro.graphs.base import Hypercube, Line, Mesh, Ring, Torus
from repro.types import GraphKind, ShapedGraphSpec


def spec(kind, shape):
    return ShapedGraphSpec(GraphKind(kind), shape)


class TestPredictedDilation:
    def test_lowering_divisible(self):
        # Theorem 48: l^((d-c)/c).
        assert predicted_square_dilation(spec("mesh", (4, 4)), spec("mesh", (16,))) == 4
        assert predicted_square_dilation(spec("mesh", (4, 4, 4)), spec("mesh", (64,))) == 16
        assert predicted_square_dilation(spec("torus", (4, 4)), spec("mesh", (16,))) == 8
        assert predicted_square_dilation(spec("torus", (4, 4)), spec("torus", (16,))) == 4

    def test_lowering_non_divisible(self):
        # Theorem 51: (8,8,8) -> (l^(3/2))^2: dilation 8^(1/2) per step... overall 8^((3-2)/2) not
        # integral for l = 8, so use l = 4: (4,4,4) -> (8,8): dilation 4^(1/2) = 2.
        assert predicted_square_dilation(spec("mesh", (4, 4, 4)), spec("mesh", (8, 8))) == 2
        assert predicted_square_dilation(spec("torus", (4, 4, 4)), spec("mesh", (8, 8))) == 4

    def test_increasing_divisible(self):
        assert predicted_square_dilation(spec("mesh", (16,)), spec("mesh", (4, 4))) == 1
        assert predicted_square_dilation(spec("torus", (9, 9)), spec("mesh", (3, 3, 3, 3))) == 2
        assert predicted_square_dilation(spec("torus", (4, 4)), spec("mesh", (2, 2, 2, 2))) == 1

    def test_increasing_non_divisible(self):
        # Theorem 53: l^((d-a)/c) with a = gcd(d, c); here (8,8) -> (4,4,4): 8^(1/3) = 2.
        assert predicted_square_dilation(spec("mesh", (8, 8)), spec("mesh", (4, 4, 4))) == 2

    def test_same_dimension(self):
        assert predicted_square_dilation(spec("torus", (5, 5)), spec("mesh", (5, 5))) == 2
        assert predicted_square_dilation(spec("mesh", (5, 5)), spec("mesh", (5, 5))) == 1

    def test_requires_square(self):
        with pytest.raises(UnsupportedEmbeddingError):
            predicted_square_dilation(spec("mesh", (4, 2)), spec("mesh", (8,)))


class TestIntermediateShapes:
    def test_coprime_case(self):
        # d=3, c=2, l=4: I_0=(4,4,4), I_1=(8,8).
        shapes = square_lowering_intermediate_shapes(3, 2, 4)
        assert shapes == [(4, 4, 4), (8, 8)]

    def test_longer_chain(self):
        # d=5, c=2, l=4: a=1, u=5, v=2, root=2; chain of length u-v+1 = 4.
        shapes = square_lowering_intermediate_shapes(5, 2, 4)
        assert shapes[0] == (4,) * 5
        assert shapes[-1] == (32, 32)
        for shape in shapes:
            assert math.prod(shape) == 4**5

    def test_non_coprime_case(self):
        # d=6, c=4, l=4: a=2, u=3, v=2, root=2; I_0=(4,)*6, I_1=(8,8,8,8).
        shapes = square_lowering_intermediate_shapes(6, 4, 4)
        assert shapes == [(4,) * 6, (8,) * 4]

    def test_missing_root_raises(self):
        with pytest.raises(UnsupportedEmbeddingError):
            square_lowering_intermediate_shapes(3, 2, 6)


class TestTheorem48:
    def test_square_mesh_to_line_matches_fitzgerald(self):
        # (l, l)-mesh in a line: our dilation l equals FitzGerald's optimum.
        for l in (3, 4, 5):
            embedding = embed_square_lowering(Mesh((l, l)), Line(l * l))
            embedding.validate()
            assert embedding.dilation() == l

    def test_square_torus_to_ring_matches_mn86(self):
        for l in (3, 4, 5):
            embedding = embed_square_lowering(Torus((l, l)), Ring(l * l))
            embedding.validate()
            assert embedding.dilation() == l

    def test_cube_mesh_to_line(self):
        embedding = embed_square_lowering(Mesh((3, 3, 3)), Line(27))
        embedding.validate()
        assert embedding.dilation() == 9  # l^((d-c)/c) = 3^2

    def test_mesh_4d_to_2d(self):
        embedding = embed_square_lowering(Mesh((3, 3, 3, 3)), Mesh((9, 9)))
        embedding.validate()
        assert embedding.dilation() == 3

    def test_torus_to_mesh_doubles(self):
        embedding = embed_square_lowering(Torus((3, 3)), Mesh((9,)))
        embedding.validate()
        assert embedding.predicted_dilation == 6
        assert embedding.dilation() <= 6

    def test_hypercube_corollary49(self):
        # Corollary 49: hypercube -> square mesh of side m has dilation m/2.
        embedding = embed_square_lowering(Hypercube(4), Mesh((4, 4)))
        embedding.validate()
        assert embedding.dilation() == 2
        embedding = embed_square_lowering(Hypercube(6), Mesh((8, 8)))
        assert embedding.dilation() == 4

    def test_hypercube_to_line_dilation_2_pow_d_minus_1(self):
        embedding = embed_square_lowering(Hypercube(4), Line(16))
        embedding.validate()
        assert embedding.dilation() == 8


class TestTheorem51:
    def test_mesh_chain(self):
        embedding = embed_square_lowering(Mesh((4, 4, 4)), Mesh((8, 8)))
        embedding.validate()
        assert embedding.predicted_dilation == 2
        assert embedding.dilation() <= 2

    def test_torus_chain_to_torus(self):
        embedding = embed_square_lowering(Torus((4, 4, 4)), Torus((8, 8)))
        embedding.validate()
        assert embedding.dilation() <= 2

    def test_torus_chain_to_mesh(self):
        embedding = embed_square_lowering(Torus((4, 4, 4)), Mesh((8, 8)))
        embedding.validate()
        assert embedding.predicted_dilation == 4
        assert embedding.dilation() <= 4

    def test_five_to_two_dimensions_multi_step_chain(self):
        # d=5, c=2, l=4: the chain has three general-reduction steps, each of
        # dilation 2, for a total predicted dilation of 4^(3/2) = 8 (Theorem 51).
        embedding = embed_square_lowering(Mesh((4,) * 5), Mesh((32, 32)))
        embedding.validate()
        assert embedding.predicted_dilation == 8
        assert embedding.dilation() <= 8
        assert len(embedding.notes["intermediate_shapes"]) == 4


class TestTheorem52:
    def test_square_increasing_divisible(self):
        embedding = embed_square_increasing(Mesh((16,)), Mesh((4, 4)))
        embedding.validate()
        assert embedding.dilation() == 1

    def test_odd_torus_into_mesh(self):
        embedding = embed_square_increasing(Torus((9, 9)), Mesh((3, 3, 3, 3)))
        embedding.validate()
        assert embedding.dilation() == 2

    def test_even_torus_into_mesh_unit(self):
        embedding = embed_square_increasing(Torus((4, 4)), Mesh((2, 2, 2, 2)))
        embedding.validate()
        assert embedding.dilation() == 1

    def test_torus_into_torus_unit(self):
        embedding = embed_square_increasing(Torus((9,)), Torus((3, 3)))
        embedding.validate()
        assert embedding.dilation() == 1


class TestTheorem53:
    def test_mesh_non_divisible(self):
        embedding = embed_square_increasing(Mesh((8, 8)), Mesh((4, 4, 4)))
        embedding.validate()
        assert embedding.predicted_dilation == 2
        assert embedding.dilation() <= 2

    def test_even_torus_non_divisible(self):
        embedding = embed_square_increasing(Torus((8, 8)), Mesh((4, 4, 4)))
        embedding.validate()
        assert embedding.dilation() <= 2

    def test_torus_to_torus_non_divisible(self):
        embedding = embed_square_increasing(Torus((8, 8)), Torus((4, 4, 4)))
        embedding.validate()
        assert embedding.dilation() <= 2


class TestEmbedSquareDispatcher:
    def test_same_dimension(self):
        embedding = embed_square(Torus((3, 3)), Mesh((3, 3)))
        assert embedding.dilation() == 2

    def test_lowering_and_increasing(self):
        assert embed_square(Mesh((4, 4)), Line(16)).dilation() == 4
        assert embed_square(Mesh((16,)), Mesh((4, 4))).dilation() == 1

    def test_rejects_non_square(self):
        with pytest.raises(UnsupportedEmbeddingError):
            embed_square(Mesh((4, 2)), Mesh((8,)))

    def test_rejects_size_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            embed_square(Mesh((4, 4)), Mesh((5, 5)))
