"""The differential construction harness: array builders vs loop reference.

Every strategy the dispatcher can select — and the strategy-specific builders
it composes — must produce *node-for-node identical* embeddings whether built
under ``use_context(backend="array")`` (batch kernels, no per-node Python) or
``use_context(backend="loop")`` (the retained per-node reference).  This is
the guard that lets the array backend be the default everywhere else.

Fixed pairs cover every strategy family exhaustively; hypothesis pairs sweep
random same-size shapes through the dispatcher, also asserting that whatever
``embed`` returns is a valid injection.
"""


import pytest
from hypothesis import assume, given, settings

from repro.core.dispatch import embed, strategy_for
from repro.core.expansion import ExpansionFactor
from repro.core.increasing import embed_increasing
from repro.core.lowering import embed_lowering_general, embed_lowering_simple
from repro.core.reduction import SimpleReductionFactor, find_general_reduction
from repro.core.square import embed_square, embed_square_increasing
from repro.exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from repro.graphs.base import Line, Mesh, Ring, Torus, make_graph
from repro.runtime import use_context

from .strategies import graph_kinds, same_size_shape_pairs


def both_backends(build):
    """Run a zero-argument builder under each backend scope."""
    with use_context(backend="array"):
        array_embedding = build()
    with use_context(backend="loop"):
        loop_embedding = build()
    return array_embedding, loop_embedding


def assert_constructions_agree(array_embedding, loop_embedding):
    """Node-for-node (and metadata) equality of the two construction paths."""
    assert array_embedding.strategy == loop_embedding.strategy
    assert array_embedding.predicted_dilation == loop_embedding.predicted_dilation
    assert array_embedding.notes == loop_embedding.notes
    assert (
        array_embedding.host_index_array() == loop_embedding.host_index_array()
    ).all()
    assert array_embedding.mapping == loop_embedding.mapping
    array_embedding.validate()
    loop_embedding.validate()


#: One (guest, host) pair per concrete strategy the dispatcher can return.
DISPATCH_PAIRS = [
    (Mesh((3, 4)), Mesh((3, 4))),                 # identity
    (Torus((3, 4)), Torus((3, 4))),               # identity (torus pair)
    (Torus((4, 6)), Mesh((4, 6))),                # same-shape:T_L
    (Mesh((2, 3, 4)), Mesh((4, 3, 2))),           # permute-dimensions
    (Torus((3, 4)), Mesh((4, 3))),                # permute-dimensions∘T_L
    (Line(24), Mesh((4, 2, 3))),                  # line:f_L (mesh host)
    (Line(24), Torus((4, 2, 3))),                 # line:f_L (torus host)
    (Ring(24), Torus((4, 2, 3))),                 # ring:h_L
    (Ring(24), Mesh((4, 2, 3))),                  # ring:π∘h_L* (even-first reorder)
    (Ring(24), Mesh((3, 4, 2))),                  # ring:π∘h_L* (odd length first)
    (Ring(27), Mesh((3, 3, 3))),                  # ring:g_L (odd mesh)
    (Ring(8), Line(8)),                           # ring:g_L (line host)
    (Mesh((4, 6)), Mesh((2, 2, 2, 3))),           # increasing:F_V
    (Torus((4, 6)), Torus((2, 2, 2, 3))),         # increasing:H_V
    (Torus((6, 12)), Mesh((6, 3, 2, 2))),         # increasing:H_V(even-first)
    (Torus((3, 9)), Mesh((3, 3, 3))),             # increasing:G_V
    (Mesh((4, 2, 3, 3)), Mesh((8, 9))),           # lowering:U_V∘τ
    (Torus((4, 2, 3, 3)), Mesh((8, 9))),          # lowering:U_V∘T∘τ
    (Mesh((3, 3, 4)), Mesh((6, 6))),              # lowering:β∘F'_S∘α (no simple factor)
    (Torus((3, 3, 4)), Torus((6, 6))),            # lowering:β∘G'_S∘α
    (Torus((3, 3, 4)), Mesh((6, 6))),             # lowering:β∘G''_S∘α
    (Mesh((4, 4)), Line(16)),                     # 1-D host collapse
    (Torus((2, 3, 5)), Ring(30)),                 # 1-D torus host collapse
    (Mesh((4,) * 5), Mesh((32, 32))),             # square-lowering: Thm 51 chain
    (Torus((4,) * 5), Mesh((32, 32))),            # square-lowering chain, torus->mesh
    (Mesh((8, 8)), Mesh((4, 4, 4))),              # square-increasing: Thm 53 chain
    (Torus((8, 8)), Torus((4, 4, 4))),            # square-increasing chain, toruses
    (Torus((8, 8)), Mesh((4, 4, 4))),             # square-increasing chain, torus->mesh
]


@pytest.mark.parametrize(
    "guest,host",
    DISPATCH_PAIRS,
    ids=[f"{g!r}->{h!r}" for g, h in DISPATCH_PAIRS],
)
def test_dispatcher_array_and_loop_builders_agree(guest, host):
    assert_constructions_agree(*both_backends(lambda: embed(guest, host)))


def test_dispatch_pairs_cover_every_selectable_family():
    families = {strategy_for(guest, host) for guest, host in DISPATCH_PAIRS}
    assert families == {
        "same-shape",
        "permute-dimensions",
        "basic",
        "increasing",
        "lowering-simple",
        "lowering-general",
        "square-increasing",
        "square-lowering",
    }


def test_lowering_general_builders_agree_directly():
    # The dispatcher prefers simple reductions, so exercise Theorem 43's
    # three functions (F'_S, G'_S, G''_S) through the direct builder.
    for guest_kind, host_kind in (("mesh", "mesh"), ("torus", "torus"), ("torus", "mesh")):
        guest = make_graph(guest_kind, (3, 3, 4))
        host = make_graph(host_kind, (6, 6))
        factor = find_general_reduction(guest.shape, host.shape)
        assert factor is not None
        assert_constructions_agree(
            *both_backends(lambda: embed_lowering_general(guest, host, factor))
        )


def test_lowering_simple_adversarial_ordering_agrees():
    factor = SimpleReductionFactor(((2, 4), (3, 3))).sorted_non_decreasing()
    guest, host = Torus((4, 2, 3, 3)), Mesh((8, 9))
    assert_constructions_agree(
        *both_backends(lambda: embed_lowering_simple(guest, host, factor))
    )


def test_increasing_forced_factor_agrees():
    guest, host = Torus((6, 12)), Mesh((6, 3, 2, 2))
    factor = ExpansionFactor(((6,), (3, 2, 2)))
    assert_constructions_agree(
        *both_backends(
            lambda: embed_increasing(guest, host, factor, prefer_unit_dilation=False)
        )
    )


def test_square_increasing_divisible_case_agrees():
    # Theorem 52 (c divisible by d) is reached through embed_square directly;
    # the dispatcher routes these pairs through the expansion condition.
    for guest_kind, host_kind in (("mesh", "mesh"), ("torus", "mesh"), ("torus", "torus")):
        guest = make_graph(guest_kind, (9, 9))
        host = make_graph(host_kind, (3, 3, 3, 3))
        assert_constructions_agree(
            *both_backends(lambda: embed_square_increasing(guest, host))
        )


def test_square_lowering_divisible_case_agrees():
    # Theorem 48 via embed_square (simple reduction with relabelled strategy).
    assert_constructions_agree(
        *both_backends(lambda: embed_square(Torus((3, 3, 3, 3)), Mesh((9, 9))))
    )


@settings(max_examples=60, deadline=None)
@given(pair=same_size_shape_pairs(), guest_kind=graph_kinds, host_kind=graph_kinds)
def test_random_pairs_build_identically_and_injectively(pair, guest_kind, host_kind):
    guest_shape, host_shape = pair
    guest = make_graph(guest_kind, guest_shape)
    host = make_graph(host_kind, host_shape)
    try:
        with use_context(backend="array"):
            array_embedding = embed(guest, host)
    except UnsupportedEmbeddingError:
        with use_context(backend="loop"), pytest.raises(UnsupportedEmbeddingError):
            embed(guest, host)
        assume(False)  # discard unsupported pairs, they carry no mapping
        return
    with use_context(backend="loop"):
        loop_embedding = embed(guest, host)
    assert_constructions_agree(array_embedding, loop_embedding)
    # embed output is always injective: same-size pairs make it bijective.
    assert array_embedding.is_bijective()


def test_backend_validation_still_applies():
    with pytest.raises(ValueError), use_context(backend="vectorized"):
        embed(Mesh((2, 2)), Mesh((2, 2)))
    with use_context(backend="array"), pytest.raises(ShapeMismatchError):
        embed(Mesh((2, 3)), Mesh((2, 2)))


def test_deprecated_method_kwarg_installs_scoped_backend():
    # The shim must behave exactly like the use_context form, and warn.
    with pytest.warns(DeprecationWarning):
        shimmed = embed(Torus((4, 6)), Mesh((2, 2, 2, 3)), method="loop")
    with use_context(backend="loop"):
        scoped = embed(Torus((4, 6)), Mesh((2, 2, 2, 3)))
    assert_constructions_agree(shimmed, scoped)
    with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
        embed(Mesh((2, 2)), Mesh((2, 2)), method="vectorized")
