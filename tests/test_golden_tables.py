"""Golden regression tests: the paper-table dilation values, pinned as JSON.

The experiment row generators behind the ``bench_table_*.py`` benchmarks are
re-run against fixtures under ``tests/golden/`` and must reproduce them
*exactly* — every guest/host pair, strategy label, measured dilation and
predicted value.  Any change to the construction kernels, the dispatcher or
the cost measures that shifts a single table cell fails here.

Regenerate the fixtures (only after deliberately changing the tables) with::

    PYTHONPATH=src python -m tests.test_golden_tables --regenerate
"""

import json
import sys
from pathlib import Path

import pytest

from repro.experiments.basic_tables import BASIC_SWEEP, line_rows, ring_rows
from repro.experiments.increasing_tables import INCREASING_SWEEP, increasing_rows
from repro.experiments.lowering_tables import (
    GENERAL_SWEEP,
    SIMPLE_SWEEP,
    general_rows,
    hypercube_rows,
    simple_rows,
)
from repro.experiments.simulation_tables import (
    SCENARIOS,
    collective_rows,
    mapping_rows,
    negative_control_rows,
)
from repro.experiments.square_tables import (
    square_increasing_rows,
    square_lowering_rows,
)
from repro.experiments.optima_tables import search_rows
from repro.experiments.workload_tables import (
    expansion_rows,
    fault_rows,
    hotspot_rows,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def _sim_map_rows():
    """The SIM-MAP table: deterministic simulated makespans per strategy.

    Pins the whole array-native netsim pipeline end to end — placement,
    batched routing, link loads and the event loop — since a single changed
    hop or tie-break shifts a makespan cell.
    """
    return mapping_rows(SCENARIOS[:3]) + negative_control_rows() + collective_rows()


#: Fixture name -> zero-argument generator of the table rows it pins.
TABLES = {
    "tab_basic": lambda: line_rows(BASIC_SWEEP) + ring_rows(BASIC_SWEEP),
    "tab_increasing": lambda: increasing_rows(INCREASING_SWEEP),
    "tab_lowering_simple": lambda: simple_rows(SIMPLE_SWEEP) + hypercube_rows(),
    "tab_lowering_general": lambda: general_rows(GENERAL_SWEEP),
    "tab_square_lowering": lambda: square_lowering_rows(),
    "tab_square_increasing": lambda: square_increasing_rows(),
    "tab_sim_map": _sim_map_rows,
    "tab_expansion": expansion_rows,
    "tab_faults": fault_rows,
    "tab_hotspot": hotspot_rows,
    "tab_optima": search_rows,
}


def fixture_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def load_fixture(name: str):
    with fixture_path(name).open("r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(TABLES))
def test_table_rows_match_golden_fixture(name):
    fixture = load_fixture(name)
    recomputed = TABLES[name]()
    # Round-trip through JSON so recomputed rows compare on the same types
    # (tuples -> lists etc.) as the stored fixture.
    recomputed = json.loads(json.dumps(recomputed))
    assert len(recomputed) == fixture["count"]
    for index, (got, want) in enumerate(zip(recomputed, fixture["rows"])):
        assert got == want, f"{name} row {index} drifted: {got!r} != {want!r}"


def test_golden_fixtures_pin_every_dilation_claim():
    """Every measured dilation in the fixtures respects its paper prediction
    (exact for most strategies, an upper bound for the torus->mesh and chain
    cases) — the tables' core claim, re-asserted on the pinned values
    themselves so fixture corruption cannot hide it."""
    checked = 0
    for name in sorted(TABLES):
        for row in load_fixture(name)["rows"]:
            if "paper" in row and isinstance(row["paper"], int):
                assert isinstance(row["dilation"], int)
                assert 1 <= row["dilation"] <= row["paper"], (name, row)
                checked += 1
    assert checked > 150  # the fixtures really do pin table-scale sweeps


def regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, generate in sorted(TABLES.items()):
        rows = json.loads(json.dumps(generate()))
        payload = {"table": name, "count": len(rows), "rows": rows}
        with fixture_path(name).open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        print(f"wrote {fixture_path(name)} ({len(rows)} rows)")


if __name__ == "__main__":  # pragma: no cover - maintenance entry point
    if "--regenerate" not in sys.argv:
        raise SystemExit("pass --regenerate to rewrite the golden fixtures")
    regenerate()
