"""Property tests: the vectorized cost path equals the legacy per-edge loop.

The array-backed hot path (``use_context(backend="array")``) must be
*exactly* the same measure as the historical pure-Python loops
(``use_context(backend="loop")``) — including
the dimension-order routing tie-break on toruses — on every embedding, not
just the well-behaved ones the paper constructs.  Random (seeded) bijections
exercise arbitrary mappings; the dispatcher's own constructions exercise the
structured ones.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    average_dilation_cost,
    dilation_cost,
    edge_congestion_cost,
)
from repro.baselines.random_embedding import random_embedding
from repro.core.dispatch import embed
from repro.core.embedding import Embedding
from repro.graphs.base import Mesh, Torus, make_graph
from repro.runtime import use_context
from repro.numbering.arrays import digits_to_indices, indices_to_digits
from repro.numbering.distance import mesh_distance, mesh_distance_array, torus_distance, torus_distance_array

from .conftest import graph_kinds, small_shapes


@st.composite
def random_pairs(draw):
    """A random graph pair of equal size plus a seed for the random bijection."""
    guest_shape = draw(small_shapes(max_dim=3, max_len=5))
    guest_kind = draw(graph_kinds)
    host_kind = draw(graph_kinds)
    # Reuse the guest shape reversed or flattened so sizes match exactly.
    variant = draw(st.integers(min_value=0, max_value=2))
    if variant == 0:
        host_shape = tuple(reversed(guest_shape))
    elif variant == 1:
        host_shape = (math.prod(guest_shape),)
    else:
        host_shape = guest_shape
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return (
        make_graph(guest_kind, guest_shape),
        make_graph(host_kind, host_shape),
        seed,
    )


class TestDistanceArrays:
    @given(small_shapes(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_distance_arrays_match_scalar(self, shape, data):
        size = math.prod(shape)
        ranks = st.integers(min_value=0, max_value=size - 1)
        a = [data.draw(ranks) for _ in range(10)]
        b = [data.draw(ranks) for _ in range(10)]
        a_digits = indices_to_digits(np.array(a), shape)
        b_digits = indices_to_digits(np.array(b), shape)
        mesh_vec = mesh_distance_array(a_digits, b_digits)
        torus_vec = torus_distance_array(a_digits, b_digits, shape)
        for row, (x, y) in enumerate(zip(a_digits, b_digits)):
            assert mesh_vec[row] == mesh_distance(tuple(x), tuple(y))
            assert torus_vec[row] == torus_distance(tuple(x), tuple(y), shape)

    @given(small_shapes())
    @settings(max_examples=50, deadline=None)
    def test_index_digit_round_trip(self, shape):
        size = math.prod(shape)
        indices = np.arange(size, dtype=np.int64)
        digits = indices_to_digits(indices, shape)
        assert (digits_to_indices(digits, shape) == indices).all()


class TestEdgeArrays:
    @given(small_shapes(), graph_kinds)
    @settings(max_examples=40, deadline=None)
    def test_edge_index_arrays_match_edges(self, shape, kind):
        graph = make_graph(kind, shape)
        legacy = sorted(
            (graph.node_index(a), graph.node_index(b)) for a, b in graph.edges()
        )
        u, v = graph.edge_index_arrays()
        assert sorted(zip(u.tolist(), v.tolist())) == legacy
        assert graph.num_edges() == len(legacy)


class TestVectorizedCostsEqualLegacy:
    @given(random_pairs())
    @settings(max_examples=60, deadline=None)
    def test_random_embeddings(self, pair):
        guest, host, seed = pair
        embedding = random_embedding(guest, host, seed=seed)
        with use_context(backend="array"):
            array = (
                dilation_cost(embedding),
                average_dilation_cost(embedding),
                edge_congestion_cost(embedding),
            )
        with use_context(backend="loop"):
            loop = (
                dilation_cost(embedding),
                average_dilation_cost(embedding),
                edge_congestion_cost(embedding),
            )
        assert array[0] == loop[0]
        assert array[1] == pytest.approx(loop[1])
        assert array[2] == loop[2]

    @given(random_pairs())
    @settings(max_examples=30, deadline=None)
    def test_paper_constructions(self, pair):
        guest, host, _ = pair
        try:
            embedding = embed(guest, host)
        except Exception:
            return  # pair not covered by the paper — nothing to compare
        with use_context(backend="array"):
            array = (
                embedding.dilation(),
                embedding.average_dilation(),
                embedding.edge_congestion(),
            )
        with use_context(backend="loop"):
            loop = (
                embedding.dilation(),
                embedding.average_dilation(),
                embedding.edge_congestion(),
            )
        assert array[0] == loop[0]
        assert array[1] == pytest.approx(loop[1])
        assert array[2] == loop[2]

    def test_edge_dilation_array_is_permutation_of_legacy(self):
        guest, host = Torus((4, 6)), Mesh((2, 2, 2, 3))
        embedding = embed(guest, host)
        assert sorted(embedding.edge_dilation_array().tolist()) == sorted(
            embedding.edge_dilations()
        )

    def test_torus_tie_break_matches_loop(self):
        # Even torus lengths hit the δt tie (forward == backward); the
        # vectorized congestion must pick the same (increasing) direction.
        guest, host = Mesh((4, 4)), Torus((4, 4))
        embedding = random_embedding(guest, host, seed=7)
        # Exercised through the deprecated shim on purpose: it must keep
        # matching the use_context form until it is removed.
        with pytest.warns(DeprecationWarning):
            shimmed = embedding.edge_congestion(method="array")
        with use_context(backend="loop"):
            assert shimmed == embedding.edge_congestion()


class TestArrayRepresentation:
    def test_lazy_mapping_from_index_array(self):
        guest, host = Mesh((2, 3)), Mesh((3, 2))
        indices = np.arange(6, dtype=np.int64)
        embedding = Embedding.from_index_array(guest, host, indices, strategy="rank")
        assert embedding._mapping is None  # not materialized yet
        assert embedding[(0, 1)] == host.index_node(1)
        assert len(embedding) == 6
        assert embedding.is_valid()

    def test_host_index_array_from_mapping(self):
        guest, host = Mesh((2, 3)), Torus((6,))
        embedding = Embedding.from_callable(
            guest, host, lambda node: (guest.node_index(node),)
        )
        assert embedding.host_index_array().tolist() == list(range(6))

    def test_round_trip_between_representations(self):
        guest, host = Torus((4, 6)), Mesh((2, 2, 2, 3))
        built = embed(guest, host)
        rebuilt = Embedding.from_index_array(
            guest, host, built.host_index_array(), strategy=built.strategy
        )
        assert rebuilt.mapping == built.mapping
        assert rebuilt.dilation() == built.dilation()

    def test_from_index_array_validates_length(self):
        from repro.exceptions import InvalidEmbeddingError

        with pytest.raises(InvalidEmbeddingError):
            Embedding.from_index_array(Mesh((2, 3)), Mesh((2, 3)), np.arange(5))

    def test_array_validation_detects_duplicates_and_range(self):
        guest = host = Mesh((2, 2))
        dup = Embedding.from_index_array(guest, host, np.array([0, 1, 1, 3]))
        assert not dup.is_valid()
        out = Embedding.from_index_array(guest, host, np.array([0, 1, 2, 9]))
        assert not out.is_valid()

    def test_compose_gather_equals_dict_compose(self):
        inner = embed(Torus((4, 6)), Torus((24,)))
        outer = embed(Torus((24,)), Mesh((4, 6)))
        composed = inner.compose(outer)
        expected = {
            node: outer.mapping[image] for node, image in inner.mapping.items()
        }
        assert composed.mapping == expected
