"""Unit tests for the basic embeddings of Section 3 (f, t, g, r, h)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.basic import (
    even_first_permutation,
    f_sequence,
    f_value,
    g_sequence,
    g_value,
    h_sequence,
    line_in_graph_embedding,
    predicted_ring_dilation,
    r_sequence,
    r_value,
    ring_in_graph_embedding,
    t_sequence,
    t_value,
)
from repro.exceptions import InvalidRadixError
from repro.graphs.base import Line, Mesh, Ring, Torus
from repro.numbering.radix import RadixBase
from repro.numbering.sequences import cyclic_spread, sequence_spread
from repro.utils.listops import apply_permutation

from .conftest import small_shapes


class TestTFunction:
    def test_even_n(self):
        assert t_sequence(6) == [0, 2, 4, 5, 3, 1]

    def test_odd_n(self):
        assert t_sequence(5) == [0, 2, 4, 3, 1]

    def test_t_is_bijective(self):
        for n in range(1, 30):
            assert sorted(t_sequence(n)) == list(range(n))

    def test_cyclic_spread_two(self):
        # Definition 14's purpose: the cyclic sequence of t_n values has spread 2.
        for n in range(3, 30):
            values = t_sequence(n)
            diffs = [abs(values[i] - values[(i + 1) % n]) for i in range(n)]
            assert max(diffs) == 2

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            t_value(5, 5)
        with pytest.raises(ValueError):
            t_value(0, 0)


class TestFFunction:
    """Theorem 13: f_L embeds a line with unit dilation."""

    def test_figure9_values(self):
        L = (4, 2, 3)
        assert f_value(L, 0) == (0, 0, 0)
        assert f_value(L, 5) == (0, 1, 0)
        assert f_value(L, 6) == (1, 1, 0)
        assert f_value(L, 11) == (1, 0, 0)
        assert f_value(L, 12) == (2, 0, 0)
        assert f_value(L, 23) == (3, 0, 0)

    def test_lemma10_bijective(self):
        for shape in [(4, 2, 3), (3, 3), (2, 2, 2, 2), (5, 4)]:
            assert len(set(f_sequence(shape))) == RadixBase(shape).size

    def test_lemma11_unit_mesh_spread(self):
        for shape in [(4, 2, 3), (3, 3, 3), (2, 5), (6,)]:
            assert sequence_spread(f_sequence(shape)) == 1

    def test_lemma12_unit_torus_spread(self):
        for shape in [(4, 2, 3), (3, 3, 3)]:
            assert sequence_spread(f_sequence(shape), metric="torus", shape=shape) == 1

    def test_lemma19_last_element(self):
        # If l1 is even, f_L(n-1) = (l1 - 1, 0, ..., 0).
        for shape in [(4, 2, 3), (2, 3, 3), (6, 5)]:
            assert f_sequence(shape)[-1] == (shape[0] - 1,) + (0,) * (len(shape) - 1)

    def test_out_of_range(self):
        with pytest.raises(InvalidRadixError):
            f_value((2, 2), 4)

    @given(small_shapes(max_dim=3, max_len=5))
    def test_f_properties(self, shape):
        seq = f_sequence(shape)
        assert len(set(seq)) == RadixBase(shape).size
        assert sequence_spread(seq) == 1


class TestGFunction:
    """Theorem 17: g_L embeds a ring in a mesh with dilation 2."""

    def test_g_is_f_composed_with_t(self):
        L = (4, 2, 3)
        n = 24
        for x in range(n):
            assert g_value(L, x) == f_value(L, t_value(n, x))

    def test_lemma16_cyclic_spread_at_most_two(self):
        for shape in [(4, 2, 3), (3, 3), (3, 5), (5,), (3, 3, 3)]:
            assert cyclic_spread(g_sequence(shape)) <= 2

    def test_bijective(self):
        for shape in [(4, 2, 3), (3, 3)]:
            assert len(set(g_sequence(shape))) == RadixBase(shape).size

    @given(small_shapes(max_dim=3, max_len=5))
    def test_g_properties(self, shape):
        seq = g_sequence(shape)
        assert len(set(seq)) == RadixBase(shape).size
        assert cyclic_spread(seq) <= 2


class TestRFunction:
    """Lemmas 21 and 26: r_L for 2-dimensional bases."""

    def test_requires_two_dimensions(self):
        with pytest.raises(InvalidRadixError):
            r_value((4, 2, 3), 0)

    def test_first_column_top_down(self):
        seq = r_sequence((4, 3))
        assert seq[:4] == [(3, 0), (2, 0), (1, 0), (0, 0)]

    def test_lemma21_unit_cyclic_mesh_spread_for_even_first_dimension(self):
        for shape in [(4, 3), (2, 5), (6, 2), (4, 2), (2, 2)]:
            assert cyclic_spread(r_sequence(shape)) == 1

    def test_lemma26_unit_cyclic_torus_spread_always(self):
        for shape in [(4, 3), (3, 3), (5, 4), (3, 2), (5, 2)]:
            assert cyclic_spread(r_sequence(shape), metric="torus", shape=shape) == 1

    def test_odd_first_dimension_ends_at_top_of_last_column(self):
        # Figure 8: when l1 is odd the last element is (l1 - 1, l2 - 1).
        seq = r_sequence((3, 4))
        assert seq[-1] == (2, 3)

    def test_bijective(self):
        for shape in [(4, 3), (3, 4), (2, 2), (5, 2)]:
            assert len(set(r_sequence(shape))) == shape[0] * shape[1]


class TestHFunction:
    """Lemmas 23 and 27, Theorems 24 and 28."""

    def test_dimension_one_is_identity(self):
        assert h_sequence((7,)) == [(x,) for x in range(7)]

    def test_dimension_two_is_r(self):
        assert h_sequence((4, 3)) == r_sequence((4, 3))

    def test_lemma23_unit_cyclic_mesh_spread_for_even_first_dimension(self):
        for shape in [(4, 2, 3), (2, 3, 3), (2, 2, 2, 2), (4, 3, 3), (2, 2, 5)]:
            assert cyclic_spread(h_sequence(shape)) == 1

    def test_lemma27_unit_cyclic_torus_spread_always(self):
        for shape in [(4, 2, 3), (3, 3, 3), (3, 5, 3), (5, 3), (3, 3, 3, 3)]:
            assert cyclic_spread(h_sequence(shape), metric="torus", shape=shape) == 1

    def test_bijective(self):
        for shape in [(4, 2, 3), (3, 3, 3), (2, 2, 2, 2)]:
            assert len(set(h_sequence(shape))) == RadixBase(shape).size

    @given(small_shapes(min_dim=2, max_dim=4, max_len=4))
    def test_h_properties(self, shape):
        seq = h_sequence(shape)
        assert len(set(seq)) == RadixBase(shape).size
        assert cyclic_spread(seq, metric="torus", shape=shape) == 1
        if shape[0] % 2 == 0:
            assert cyclic_spread(seq) == 1


class TestEvenFirstPermutation:
    def test_finds_even_dimension(self):
        result = even_first_permutation((3, 4, 5))
        assert result is not None
        reordered, perm = result
        assert reordered[0] % 2 == 0
        assert apply_permutation(perm, reordered) == (3, 4, 5)

    def test_none_when_all_odd(self):
        assert even_first_permutation((3, 5, 7)) is None

    def test_already_even_first(self):
        reordered, perm = even_first_permutation((4, 3))
        assert reordered == (4, 3)
        assert apply_permutation(perm, reordered) == (4, 3)


class TestLineEmbeddings:
    """Theorem 13 end to end."""

    @pytest.mark.parametrize(
        "host",
        [Mesh((4, 2, 3)), Torus((4, 2, 3)), Mesh((5, 5)), Torus((3, 3, 3)), Line(17), Ring(16)],
    )
    def test_unit_dilation(self, host):
        embedding = line_in_graph_embedding(host)
        embedding.validate()
        assert embedding.dilation() == 1
        assert embedding.predicted_dilation == 1


class TestRingEmbeddings:
    """Theorems 17, 24 and 28 end to end."""

    @pytest.mark.parametrize("host", [Torus((4, 2, 3)), Torus((3, 3, 5)), Torus((5, 7)), Ring(9)])
    def test_ring_in_torus_unit_dilation(self, host):
        embedding = ring_in_graph_embedding(host)
        embedding.validate()
        assert embedding.dilation() == 1

    @pytest.mark.parametrize("host", [Mesh((4, 2, 3)), Mesh((3, 4)), Mesh((2, 3, 3)), Mesh((2, 2, 2, 2))])
    def test_ring_in_even_mesh_unit_dilation(self, host):
        embedding = ring_in_graph_embedding(host)
        embedding.validate()
        assert embedding.dilation() == 1

    @pytest.mark.parametrize("host", [Mesh((3, 3)), Mesh((3, 5)), Mesh((3, 3, 3))])
    def test_ring_in_odd_mesh_dilation_two(self, host):
        embedding = ring_in_graph_embedding(host)
        embedding.validate()
        # Theorem 17: dilation 2, optimal because odd meshes lack Hamiltonian circuits.
        assert embedding.dilation() == 2

    def test_ring_in_line_dilation_two(self):
        embedding = ring_in_graph_embedding(Line(8))
        embedding.validate()
        assert embedding.dilation() == 2

    def test_predicted_ring_dilation(self):
        assert predicted_ring_dilation(Torus((3, 3))) == 1
        assert predicted_ring_dilation(Mesh((3, 3))) == 2
        assert predicted_ring_dilation(Mesh((4, 3))) == 1
        assert predicted_ring_dilation(Line(9)) == 2

    @given(small_shapes(min_dim=1, max_dim=3, max_len=5), st.booleans())
    def test_ring_embedding_property(self, shape, use_torus):
        host = Torus(shape) if use_torus else Mesh(shape)
        embedding = ring_in_graph_embedding(host)
        embedding.validate()
        assert embedding.dilation() <= embedding.predicted_dilation
