"""Unit tests for lowering-dimension embeddings (Section 4.2, Theorems 39 and 43)."""

import pytest

from repro.core.lowering import (
    F_prime_value,
    G_double_prime_value,
    G_prime_value,
    U_value,
    embed_lowering,
    embed_lowering_general,
    embed_lowering_simple,
)
from repro.core.reduction import (
    GeneralReductionFactor,
    SimpleReductionFactor,
)
from repro.exceptions import NoReductionError, ShapeMismatchError
from repro.graphs.base import Hypercube, Line, Mesh, Ring, Torus


class TestUValue:
    def test_collapses_groups_by_mixed_radix_value(self):
        factor = SimpleReductionFactor(((4, 2), (3, 3)))
        # Group (i1, i2) with radices (4, 2) evaluates to 2*i1 + i2.
        assert U_value(factor, (1, 0, 2, 1)) == (2, 7)
        assert U_value(factor, (3, 1, 2, 2)) == (7, 8)

    def test_dimension_check(self):
        factor = SimpleReductionFactor(((4, 2),))
        with pytest.raises(ValueError):
            U_value(factor, (1, 0, 0))

    def test_injective_over_guest(self):
        factor = SimpleReductionFactor(((3, 2), (2, 2)))
        guest = Mesh((3, 2, 2, 2))
        images = {U_value(factor, node) for node in guest.nodes()}
        assert len(images) == guest.size


class TestTheorem39:
    def test_mesh_guest_dilation_formula(self):
        # (4,2,3,3)-mesh in an (8,9)-mesh: dilation max(8/4, 9/3) = 3.
        embedding = embed_lowering_simple(Mesh((4, 2, 3, 3)), Mesh((8, 9)))
        embedding.validate()
        assert embedding.predicted_dilation == 3
        assert embedding.dilation() == 3

    def test_mesh_guest_torus_host(self):
        embedding = embed_lowering_simple(Mesh((4, 2, 3, 3)), Torus((8, 9)))
        embedding.validate()
        assert embedding.dilation() == 3

    def test_torus_guest_torus_host(self):
        embedding = embed_lowering_simple(Torus((4, 2, 3, 3)), Torus((8, 9)))
        embedding.validate()
        assert embedding.dilation() == 3

    def test_torus_guest_mesh_host_doubles(self):
        embedding = embed_lowering_simple(Torus((4, 2, 3, 3)), Mesh((8, 9)))
        embedding.validate()
        assert embedding.predicted_dilation == 6
        assert embedding.dilation() <= 6
        # The T relabelling can only help, never hurt, relative to the base cost.
        assert embedding.dilation() >= 3

    def test_corollary40_hypercube_source(self):
        # A hypercube embeds in an (m1, ..., mc)-mesh with dilation max(m_i)/2.
        embedding = embed_lowering_simple(Hypercube(6), Mesh((8, 8)))
        embedding.validate()
        assert embedding.dilation() == 4
        embedding = embed_lowering_simple(Hypercube(6), Mesh((4, 4, 4)))
        embedding.validate()
        assert embedding.dilation() == 2

    def test_into_line_and_ring(self):
        embedding = embed_lowering_simple(Mesh((4, 4)), Line(16))
        embedding.validate()
        assert embedding.dilation() == 4
        embedding = embed_lowering_simple(Torus((4, 4)), Ring(16))
        embedding.validate()
        assert embedding.dilation() == 4

    def test_ablation_bad_ordering_increases_dilation(self):
        good = embed_lowering_simple(Mesh((4, 2)), Line(8))
        bad_factor = SimpleReductionFactor(((2, 4),))
        bad = embed_lowering_simple(Mesh((4, 2)), Line(8), bad_factor)
        assert good.dilation() == 2
        assert bad.dilation() == 4

    def test_requires_lower_dimension(self):
        with pytest.raises(NoReductionError):
            embed_lowering_simple(Mesh((4, 4)), Mesh((4, 4)))

    def test_size_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            embed_lowering_simple(Mesh((4, 4)), Line(15))

    def test_invalid_supplied_factor(self):
        with pytest.raises(NoReductionError):
            embed_lowering_simple(Mesh((4, 4)), Line(16), SimpleReductionFactor(((2, 8),)))

    def test_no_simple_reduction(self):
        with pytest.raises(NoReductionError):
            embed_lowering_simple(Mesh((3, 3, 4)), Mesh((6, 6)))


class TestDefinition42Functions:
    FACTOR = GeneralReductionFactor(multiplicant=(3, 3), multiplier=(6,), s_groups=((2, 3),))

    def test_F_prime(self):
        # Base (i1, i2) scaled by s = (2, 3) plus the offset from F_S(i3).
        value = F_prime_value(self.FACTOR, (1, 2, 0))
        assert value == (2 * 1 + 0, 3 * 2 + 0)

    def test_G_prime_and_double_prime_shapes(self):
        host = Mesh((6, 9))
        guest = Torus((3, 3, 6))
        for fn in (G_prime_value, G_double_prime_value):
            images = {fn(self.FACTOR, node) for node in guest.nodes()}
            assert len(images) == guest.size
            assert all(host.contains(image) for image in images)

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            F_prime_value(self.FACTOR, (1, 2))


class TestTheorem43:
    def test_figure12_mesh_to_mesh(self):
        embedding = embed_lowering_general(Mesh((3, 3, 6)), Mesh((6, 9)))
        embedding.validate()
        assert embedding.dilation() == embedding.predicted_dilation == 3

    def test_mesh_to_torus(self):
        embedding = embed_lowering_general(Mesh((3, 3, 6)), Torus((6, 9)))
        embedding.validate()
        assert embedding.dilation() == 3

    def test_torus_to_torus(self):
        embedding = embed_lowering_general(Torus((3, 3, 6)), Torus((6, 9)))
        embedding.validate()
        assert embedding.dilation() == 3

    def test_torus_to_mesh_at_most_double(self):
        embedding = embed_lowering_general(Torus((3, 3, 6)), Mesh((6, 9)))
        embedding.validate()
        assert 3 <= embedding.dilation() <= 6

    def test_general_only_shapes(self):
        embedding = embed_lowering_general(Mesh((3, 3, 4)), Mesh((6, 6)))
        embedding.validate()
        assert embedding.dilation() == 2

    def test_dimension_constraint(self):
        with pytest.raises(NoReductionError):
            embed_lowering_general(Mesh((2, 2, 2, 2)), Mesh((4, 4)))

    def test_invalid_supplied_factor(self):
        bad = GeneralReductionFactor(multiplicant=(3, 3), multiplier=(6,), s_groups=((6,),))
        with pytest.raises(NoReductionError):
            embed_lowering_general(Mesh((3, 3, 6)), Mesh((6, 9)), bad)

    def test_no_general_reduction(self):
        with pytest.raises(NoReductionError):
            embed_lowering_general(Mesh((3, 3, 5)), Mesh((5, 9)))


class TestEmbedLoweringDispatcher:
    def test_prefers_simple(self):
        embedding = embed_lowering(Mesh((3, 3, 6)), Mesh((6, 9)))
        assert embedding.strategy.startswith("lowering:U_V")

    def test_uses_general_when_needed(self):
        embedding = embed_lowering(Mesh((3, 3, 4)), Mesh((6, 6)))
        assert "F'_S" in embedding.strategy

    def test_raises_when_neither(self):
        # (6, 30) is neither a simple nor a general reduction of (4, 9, 5): no
        # subset of {4, 9, 5} multiplies to 6, and no single-length factorization
        # produces the right products either.
        with pytest.raises(NoReductionError):
            embed_lowering(Mesh((4, 9, 5)), Mesh((6, 30)))
