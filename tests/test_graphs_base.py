"""Unit tests for torus and mesh graphs (Definitions 2-4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidShapeError
from repro.graphs.base import Hypercube, Line, Mesh, Ring, Torus, graph_from_spec, make_graph
from repro.types import GraphKind, ShapedGraphSpec

from .conftest import small_shapes

pytestmark = pytest.mark.smoke


class TestConstruction:
    def test_figure1_torus(self):
        torus = Torus((4, 2, 3))
        assert torus.size == 24
        assert torus.dimension == 3
        assert torus.is_torus and not torus.is_mesh

    def test_figure2_mesh(self):
        mesh = Mesh((4, 2, 3))
        assert mesh.size == 24
        assert mesh.is_mesh

    def test_line_and_ring(self):
        assert Line(7).shape == (7,) and Line(7).is_mesh
        assert Ring(7).shape == (7,) and Ring(7).is_torus

    def test_hypercube(self):
        cube = Hypercube(4)
        assert cube.shape == (2, 2, 2, 2)
        assert cube.is_hypercube and cube.is_square

    def test_hypercube_rejects_zero_dimension(self):
        with pytest.raises(InvalidShapeError):
            Hypercube(0)

    def test_make_graph(self):
        assert make_graph("torus", (3, 3)) == Torus((3, 3))
        assert make_graph(GraphKind.MESH, (3, 3)) == Mesh((3, 3))

    def test_graph_from_spec(self):
        spec = ShapedGraphSpec(GraphKind.TORUS, (3, 5))
        assert graph_from_spec(spec) == Torus((3, 5))

    def test_invalid_shape(self):
        with pytest.raises(InvalidShapeError):
            Mesh((0, 3))


class TestNodesAndIndices:
    def test_node_count(self):
        mesh = Mesh((3, 4))
        assert len(list(mesh.nodes())) == 12

    def test_index_roundtrip(self):
        torus = Torus((3, 2, 2))
        for index in range(torus.size):
            assert torus.node_index(torus.index_node(index)) == index

    def test_contains(self):
        mesh = Mesh((3, 4))
        assert mesh.contains((2, 3))
        assert not mesh.contains((3, 0))
        assert not mesh.contains((0,))

    def test_int_shorthand(self):
        line = Line(5)
        assert line.node_of_int(3) == (3,)
        assert line.int_of_node((3,)) == 3
        with pytest.raises(InvalidShapeError):
            Mesh((2, 2)).node_of_int(1)


class TestAdjacency:
    def test_torus_every_node_has_two_neighbors_per_dimension(self):
        # Definition 2: toruses are regular of degree 2d (when lengths > 2).
        torus = Torus((4, 3, 5))
        for node in torus.nodes():
            assert torus.degree(node) == 6

    def test_mesh_boundary_nodes_have_fewer_neighbors(self):
        mesh = Mesh((4, 3))
        assert mesh.degree((0, 0)) == 2
        assert mesh.degree((1, 1)) == 4
        assert mesh.degree((0, 1)) == 3

    def test_length_two_torus_dimension_deduplicates(self):
        # In a torus dimension of length 2 the left and right neighbours coincide.
        torus = Torus((2, 3))
        assert torus.degree((0, 0)) == 3

    def test_hypercube_degree(self):
        cube = Hypercube(4)
        for node in cube.nodes():
            assert cube.degree(node) == 4

    def test_neighbors_of_interior_mesh_node(self):
        mesh = Mesh((4, 2, 3))
        neighbors = set(mesh.neighbors((1, 0, 1)))
        assert neighbors == {(0, 0, 1), (2, 0, 1), (1, 1, 1), (1, 0, 0), (1, 0, 2)}

    def test_neighbors_wraparound(self):
        torus = Torus((4, 2, 3))
        assert (3, 0, 0) in torus.neighbors((0, 0, 0))
        assert (0, 0, 2) in torus.neighbors((0, 0, 0))

    def test_neighbors_invalid_node(self):
        with pytest.raises(InvalidShapeError):
            Mesh((2, 2)).neighbors((5, 5))

    def test_are_adjacent(self):
        mesh = Mesh((3, 3))
        assert mesh.are_adjacent((0, 0), (0, 1))
        assert not mesh.are_adjacent((0, 0), (1, 1))


class TestEdges:
    def test_edge_counts_mesh(self):
        # A (p, q)-mesh has p(q-1) + q(p-1) edges.
        mesh = Mesh((3, 4))
        assert mesh.num_edges() == 3 * 3 + 4 * 2

    def test_edge_counts_torus(self):
        # A (p, q)-torus with p, q > 2 has 2pq edges.
        torus = Torus((3, 4))
        assert torus.num_edges() == 2 * 12

    def test_edge_counts_hypercube(self):
        assert Hypercube(3).num_edges() == 12

    def test_edges_are_unique_and_adjacent(self):
        torus = Torus((3, 3))
        edges = list(torus.edges())
        assert len(edges) == len(set(edges))
        for a, b in edges:
            assert torus.distance(a, b) == 1


class TestDistanceAndDiameter:
    def test_distances_match_paper_examples(self):
        assert Torus((4, 2, 3)).distance((0, 0, 1), (3, 0, 0)) == 2
        assert Mesh((4, 2, 3)).distance((0, 0, 1), (3, 0, 0)) == 4

    def test_diameter(self):
        assert Mesh((4, 2, 3)).diameter() == 3 + 1 + 2
        assert Torus((4, 2, 3)).diameter() == 2 + 1 + 1
        assert Ring(7).diameter() == 3
        assert Line(7).diameter() == 6

    def test_distance_invalid_node(self):
        with pytest.raises(InvalidShapeError):
            Mesh((2, 2)).distance((0, 0), (9, 9))

    @given(small_shapes(max_dim=3, max_len=4), st.randoms())
    def test_distance_is_a_metric(self, shape, rng):
        torus = Torus(shape)
        nodes = [torus.index_node(rng.randrange(torus.size)) for _ in range(3)]
        a, b, c = nodes
        assert torus.distance(a, a) == 0
        assert torus.distance(a, b) == torus.distance(b, a)
        assert torus.distance(a, c) <= torus.distance(a, b) + torus.distance(b, c)
