"""Unit tests for Gray codes and the reflected mixed-radix sequence (Section 3.1)."""

from hypothesis import given

from repro.numbering.graycode import (
    binary_reflected_gray_code,
    binary_reflected_gray_value,
    gray_to_binary_value,
    natural_sequence,
    reflected_mixed_radix_sequence,
)
from repro.numbering.radix import RadixBase
from repro.numbering.sequences import is_gray_sequence, sequence_spread

from .conftest import small_shapes


class TestNaturalSequence:
    def test_natural_sequence_is_lexicographic(self):
        assert natural_sequence((2, 2)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_natural_sequence_spread_exceeds_one_for_higher_dims(self):
        # Section 3.1: the sequence P has δm-spread greater than 1 for all d > 1.
        for shape in [(2, 2), (4, 2, 3), (3, 3)]:
            assert sequence_spread(natural_sequence(shape)) > 1

    def test_natural_sequence_spread_is_one_for_lines(self):
        assert sequence_spread(natural_sequence((7,))) == 1


class TestReflectedSequence:
    def test_figure4_prefix(self):
        # The first segment of P' for L = (4, 2, 3) walks the last digit up,
        # then reflects it while the middle digit advances.
        seq = reflected_mixed_radix_sequence((4, 2, 3))
        assert seq[:6] == [(0, 0, 0), (0, 0, 1), (0, 0, 2), (0, 1, 2), (0, 1, 1), (0, 1, 0)]

    def test_unit_spread_for_figure_shape(self):
        seq = reflected_mixed_radix_sequence((4, 2, 3))
        assert sequence_spread(seq) == 1
        assert sequence_spread(seq, metric="torus", shape=(4, 2, 3)) == 1

    def test_is_bijection(self):
        seq = reflected_mixed_radix_sequence((3, 2, 2))
        assert len(set(seq)) == 12

    @given(small_shapes(max_dim=3, max_len=5))
    def test_unit_spread_property(self, shape):
        # Lemma 11: the reflected sequence always has unit δm-spread.
        seq = reflected_mixed_radix_sequence(shape)
        assert is_gray_sequence(seq)
        assert len(set(seq)) == RadixBase(shape).size


class TestBinaryGray:
    def test_gray_values(self):
        assert [binary_reflected_gray_value(x) for x in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_gray_inverse(self):
        for x in range(64):
            assert gray_to_binary_value(binary_reflected_gray_value(x)) == x

    def test_gray_code_tuples(self):
        assert binary_reflected_gray_code(2) == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_matches_mixed_radix_special_case(self):
        # The paper's generalization reduces to the classic binary reflected
        # Gray code when every radix is 2.
        for bits in (1, 2, 3, 4, 5):
            assert binary_reflected_gray_code(bits) == reflected_mixed_radix_sequence((2,) * bits)

    def test_gray_code_is_cyclic_gray(self):
        from repro.numbering.sequences import is_cyclic_gray_sequence

        assert is_cyclic_gray_sequence(binary_reflected_gray_code(4))
