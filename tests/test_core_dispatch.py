"""Unit tests for the automatic strategy dispatcher."""

import pytest

from repro.core.dispatch import embed, strategy_for
from repro.exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from repro.graphs.base import Hypercube, Line, Mesh, Ring, Torus

pytestmark = pytest.mark.smoke


class TestStrategySelection:
    def test_same_shape(self):
        assert strategy_for(Torus((3, 4)), Mesh((3, 4))) == "same-shape"

    def test_permutation(self):
        assert strategy_for(Mesh((3, 4)), Mesh((4, 3))) == "permute-dimensions"

    def test_basic(self):
        assert strategy_for(Ring(24), Mesh((4, 2, 3))) == "basic"
        assert strategy_for(Line(24), Torus((4, 2, 3))) == "basic"

    def test_one_dimensional_host(self):
        assert strategy_for(Mesh((4, 6)), Line(24)) == "lowering-simple"

    def test_increasing(self):
        assert strategy_for(Torus((4, 6)), Mesh((2, 2, 2, 3))) == "increasing"

    def test_lowering(self):
        assert strategy_for(Mesh((4, 2, 3, 3)), Mesh((8, 9))) == "lowering-simple"
        assert strategy_for(Mesh((3, 3, 4)), Mesh((6, 6))) == "lowering-general"

    def test_square_fallbacks(self):
        assert strategy_for(Mesh((8, 8)), Mesh((4, 4, 4))) == "square-increasing"
        assert strategy_for(Mesh((4, 4, 4, 4)), Mesh((16, 16))) == "lowering-simple"

    def test_unsupported(self):
        assert strategy_for(Mesh((4, 9)), Mesh((6, 3, 2))) == "unsupported"
        assert strategy_for(Mesh((4, 9, 5)), Mesh((6, 30))) == "unsupported"

    def test_size_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            strategy_for(Mesh((2, 3)), Mesh((2, 2)))

    def test_subshape(self):
        assert strategy_for(Mesh((2, 2)), Mesh((2, 3))) == "subshape"
        assert strategy_for(Torus((2, 3)), Mesh((3, 4))) == "subshape"

    def test_subshape_unsupported_when_no_subbox_fits(self):
        # 24 has no factorization into extents <= 5, so no sub-box matches.
        assert strategy_for(Mesh((24,)), Mesh((5, 5))) == "unsupported"


class TestEmbedDispatcher:
    @pytest.mark.parametrize(
        "guest, host, expected_max_dilation",
        [
            (Mesh((3, 4)), Mesh((3, 4)), 1),
            (Torus((3, 4)), Mesh((3, 4)), 2),
            (Mesh((3, 4)), Mesh((4, 3)), 1),
            (Torus((3, 4)), Mesh((4, 3)), 2),
            (Ring(24), Mesh((4, 2, 3)), 1),
            (Line(24), Torus((4, 2, 3)), 1),
            (Ring(15), Mesh((3, 5)), 2),
            (Torus((4, 6)), Mesh((2, 2, 2, 3)), 1),
            (Mesh((4, 6)), Torus((2, 2, 2, 3)), 1),
            (Hypercube(6), Mesh((8, 8)), 4),
            (Mesh((4, 2, 3, 3)), Mesh((8, 9)), 3),
            (Mesh((3, 3, 4)), Mesh((6, 6)), 2),
            (Torus((8, 8)), Ring(64), 8),
            (Mesh((8, 8)), Mesh((4, 4, 4)), 2),
            (Torus((4, 4, 4)), Mesh((8, 8)), 4),
            (Mesh((4, 6)), Line(24), 6),
        ],
    )
    def test_dispatch_produces_valid_embeddings(self, guest, host, expected_max_dilation):
        embedding = embed(guest, host)
        embedding.validate()
        assert embedding.dilation() <= expected_max_dilation

    def test_guest_object_is_preserved_for_basic(self):
        guest = Ring(24)
        host = Mesh((4, 2, 3))
        embedding = embed(guest, host)
        assert embedding.guest is guest
        assert embedding.host is host

    def test_one_dimensional_host_uses_largest_first_group(self):
        embedding = embed(Mesh((2, 6)), Line(12))
        # Sorted non-increasing group (6, 2): dilation 12/6 = 2.
        assert embedding.dilation() == 2

    def test_unsupported_pair_raises(self):
        with pytest.raises(UnsupportedEmbeddingError):
            embed(Mesh((4, 9)), Mesh((6, 3, 2)))
        with pytest.raises(UnsupportedEmbeddingError):
            embed(Mesh((4, 9, 5)), Mesh((6, 30)))

    def test_guest_larger_than_host_raises(self):
        with pytest.raises(ShapeMismatchError):
            embed(Mesh((3, 4)), Mesh((3, 3)))

    def test_smaller_guest_embeds_injectively(self):
        embedding = embed(Mesh((3, 3)), Mesh((3, 4)))
        embedding.validate()
        assert embedding.strategy.startswith("subshape:")
        assert len(set(embedding.mapping.values())) == 9
        assert embedding.dilation() == 1

    def test_permuted_torus_guest_into_mesh_host(self):
        embedding = embed(Torus((3, 5)), Mesh((5, 3)))
        embedding.validate()
        assert embedding.dilation() == 2

    def test_hypercube_permutation_identity(self):
        embedding = embed(Torus((2, 2, 2)), Mesh((2, 2, 2)))
        assert embedding.dilation() == 1
