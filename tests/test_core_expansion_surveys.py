"""Differential tests for the unequal-size (expansion) embedding axis.

The dispatcher must produce *injective sub-embeddings* for every guest
strictly smaller than its host — loop and array backends node-for-node
identical — and the ``expansion`` survey suite must record the new
``guest_size`` column and degrade gracefully on pairs without a sub-box.
"""

import math

import pytest
from hypothesis import given, settings

from repro.core.dispatch import embed, strategy_for
from repro.core.subshape import find_subshape
from repro.exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from repro.graphs.base import Mesh, Torus, make_graph
from repro.runtime import use_context
from repro.survey.runner import SurveyOptions, evaluate_scenario
from repro.survey.scenarios import Scenario, scenarios_for_suite
from repro.types import GraphKind

from .conftest import graph_kinds, unequal_size_shape_pairs

pytestmark = pytest.mark.smoke

np = pytest.importorskip("numpy")


def _graph(kind, shape):
    return Torus(shape) if kind == GraphKind.TORUS else Mesh(shape)


class TestFindSubshape:
    def test_descending_divisor_search_is_greedy(self):
        assert find_subshape(6, (3, 4)) == (3, 2)
        assert find_subshape(12, (3, 4)) == (3, 4)
        assert find_subshape(8, (3, 4)) == (2, 4)
        assert find_subshape(5, (5, 5)) == (5, 1)

    def test_unfactorable_sizes_return_none(self):
        assert find_subshape(7, (3, 4)) is None       # prime above every extent
        assert find_subshape(25, (3, 4)) is None      # larger than the host
        assert find_subshape(0, (3, 4)) is None
        assert find_subshape(-2, (3, 4)) is None

    def test_degenerate_single_node(self):
        assert find_subshape(1, (3, 4)) == (1, 1)

    @given(pair=unequal_size_shape_pairs())
    @settings(max_examples=60, deadline=None)
    def test_found_subshape_is_a_valid_sub_box(self, pair):
        guest_shape, host_shape = pair
        size = math.prod(guest_shape)
        sub = find_subshape(size, host_shape)
        if sub is None:
            return
        assert len(sub) == len(host_shape)
        assert math.prod(sub) == size
        for extent, length in zip(sub, host_shape):
            assert 1 <= extent <= length


class TestExpansionDispatch:
    @given(pair=unequal_size_shape_pairs(), guest_kind=graph_kinds, host_kind=graph_kinds)
    @settings(max_examples=40, deadline=None)
    def test_backends_agree_node_for_node(self, pair, guest_kind, host_kind):
        guest_shape, host_shape = pair
        results = {}
        for backend in ("array", "loop"):
            guest = _graph(guest_kind, guest_shape)
            host = _graph(host_kind, host_shape)
            with use_context(backend=backend):
                try:
                    embedding = embed(guest, host)
                except UnsupportedEmbeddingError:
                    results[backend] = "unsupported"
                    continue
                results[backend] = (
                    embedding.strategy,
                    [host.node_index(embedding.map_index(r)) for r in range(guest.size)],
                )
        assert results["array"] == results["loop"]

    @given(pair=unequal_size_shape_pairs(), guest_kind=graph_kinds, host_kind=graph_kinds)
    @settings(max_examples=40, deadline=None)
    def test_sub_embedding_is_injective_and_bounded(self, pair, guest_kind, host_kind):
        guest_shape, host_shape = pair
        guest = _graph(guest_kind, guest_shape)
        host = _graph(host_kind, host_shape)
        try:
            embedding = embed(guest, host)
        except UnsupportedEmbeddingError:
            assert strategy_for(guest, host) == "unsupported"
            return
        assert strategy_for(guest, host) == "subshape"
        assert embedding.strategy.startswith("subshape:")
        images = [host.node_index(embedding.map_index(r)) for r in range(guest.size)]
        assert len(set(images)) == guest.size  # injective, not surjective
        assert embedding.matches_prediction()

    def test_guest_larger_than_host_rejected(self):
        with pytest.raises(ShapeMismatchError):
            embed(Torus((4, 4)), Mesh((3, 4)))
        with pytest.raises(ShapeMismatchError):
            strategy_for(Torus((4, 4)), Mesh((3, 4)))

    def test_torus_host_dilation_is_an_upper_bound(self):
        embedding = embed(Torus((6,)), Torus((3, 3)))
        assert embedding.notes["dilation_is_upper_bound"] is True
        assert embedding.dilation() <= embedding.predicted_dilation


class TestExpansionSuite:
    def test_suite_pairs_are_strictly_expanding(self):
        scenarios = scenarios_for_suite("expansion")
        assert len(scenarios) >= 8
        for scenario in scenarios:
            assert math.prod(scenario.guest_shape) < math.prod(scenario.host_shape)
            assert scenario.traffic == "" and scenario.faults == ""

    def test_records_carry_guest_size_and_host_nodes(self):
        scenario = Scenario("torus", (2, 3), "mesh", (3, 4))
        record = evaluate_scenario(scenario, SurveyOptions(workers=1))
        assert record.status == "ok"
        assert record.guest_size == 6
        assert record.nodes == 12
        assert record.faults is None
        assert record.strategy.startswith("subshape:")
        assert record.dilation >= 1

    def test_pairs_without_a_sub_box_record_unsupported(self):
        scenario = Scenario("mesh", (2, 6), "mesh", (4, 4))
        record = evaluate_scenario(scenario, SurveyOptions(workers=1))
        assert record.status == "unsupported"
        assert record.guest_size == 12
        assert record.nodes == 16

    def test_measured_records_match_direct_embedding(self):
        for scenario in scenarios_for_suite("expansion")[:3]:
            record = evaluate_scenario(scenario, SurveyOptions(workers=1))
            guest = make_graph(GraphKind(scenario.guest_kind), scenario.guest_shape)
            host = make_graph(GraphKind(scenario.host_kind), scenario.host_shape)
            embedding = embed(guest, host)
            assert record.dilation == embedding.dilation()
            assert record.average_dilation == pytest.approx(embedding.average_dilation())
