"""Unit tests for the expansion condition and factor search (Definition 30)."""

import math

import pytest
from hypothesis import given

from repro.core.expansion import (
    ExpansionFactor,
    find_expansion_factor,
    find_unit_dilation_torus_factor,
    is_expansion,
    iter_expansion_factors,
    require_expansion_factor,
)
from repro.exceptions import NoExpansionError

from .conftest import small_shapes


class TestExpansionFactorObject:
    def test_paper_example(self):
        # Definition 30's example: M = (2,4,3,8,5,4) is an expansion of L = (6,8,80).
        factor = ExpansionFactor(((2, 3), (8,), (4, 5, 4)))
        assert factor.source_shape == (6, 8, 80)
        assert factor.expands((6, 8, 80), (2, 4, 3, 8, 5, 4))

    def test_flattened(self):
        factor = ExpansionFactor(((2, 3), (8,)))
        assert factor.flattened == (2, 3, 8)

    def test_even_first_normalization(self):
        factor = ExpansionFactor(((3, 2), (5, 4, 3)))
        normalized = factor.with_even_first()
        assert normalized.lists == ((2, 3), (4, 5, 3))
        assert normalized.source_shape == factor.source_shape

    def test_predicates(self):
        factor = ExpansionFactor(((2, 3), (4, 5)))
        assert factor.all_lists_have_length_at_least(2)
        assert factor.all_lists_contain_even()
        assert not ExpansionFactor(((3,), (5, 7))).all_lists_contain_even()


class TestSearch:
    def test_paper_example_found(self):
        factor = find_expansion_factor((6, 8, 80), (2, 4, 3, 8, 5, 4))
        assert factor is not None
        assert factor.expands((6, 8, 80), (2, 4, 3, 8, 5, 4))

    def test_is_expansion(self):
        assert is_expansion((6, 12), (6, 3, 2, 2))
        assert is_expansion((4, 6), (2, 2, 2, 3))
        assert not is_expansion((4, 6), (2, 2, 3, 3))
        assert not is_expansion((4, 6), (4, 6))  # not strictly higher dimension

    def test_no_expansion_when_products_mismatch(self):
        assert find_expansion_factor((4, 6), (2, 2, 2, 2)) is None

    def test_iter_yields_multiple_factors(self):
        # The (6, 12) -> (6, 3, 2, 2) example has both ((6),(3,2,2)) and ((2,3),(6,2)).
        factors = list(iter_expansion_factors((6, 12), (6, 3, 2, 2), limit=16))
        flattened = {tuple(sorted(map(len, f.lists))) for f in factors}
        assert {1, 3} in [set(x) for x in flattened] or (1, 3) in flattened
        assert any(f.all_lists_have_length_at_least(2) for f in factors)

    def test_min_parts_per_list(self):
        factors = list(iter_expansion_factors((6, 12), (6, 3, 2, 2), min_parts_per_list=2))
        assert factors
        for factor in factors:
            assert factor.all_lists_have_length_at_least(2)

    def test_require_raises(self):
        with pytest.raises(NoExpansionError):
            require_expansion_factor((4, 6), (5, 5))

    def test_hypercube_target_always_expansion_of_power_of_two_shape(self):
        # Theorem 33.
        for shape in [(4, 8), (2, 16), (8, 2, 2), (4, 4, 4)]:
            bits = int(math.log2(math.prod(shape)))
            assert is_expansion(shape, (2,) * bits)

    @given(small_shapes(max_dim=3, max_len=6))
    def test_hypercube_expansion_property(self, shape):
        # Theorem 33 restricted to power-of-two sizes.
        size = math.prod(shape)
        if size & (size - 1) != 0:
            return
        bits = size.bit_length() - 1
        if bits <= len(shape):
            return
        factor = find_expansion_factor(shape, (2,) * bits)
        assert factor is not None
        assert factor.expands(shape, (2,) * bits)


class TestUnitDilationTorusFactor:
    def test_found_for_even_shapes(self):
        # The paper's (6,12) -> (6,3,2,2) example: factor ((2,3),(6,2)) allows dilation 1.
        factor = find_unit_dilation_torus_factor((6, 12), (6, 3, 2, 2))
        assert factor is not None
        for group in factor.lists:
            assert len(group) >= 2
            assert group[0] % 2 == 0

    def test_none_for_odd_lengths(self):
        assert find_unit_dilation_torus_factor((3, 9), (3, 3, 3)) is None

    def test_none_when_no_two_part_factorization(self):
        # (4, 6) -> (4, 6, ...) with a singleton group cannot satisfy length >= 2.
        assert find_unit_dilation_torus_factor((2, 6), (2, 2, 3)) is None
