"""Unit tests for the ASCII figure renderers."""

from repro.core.basic import f_value, g_value, h_value, line_in_graph_embedding, ring_in_graph_embedding
from repro.core.dispatch import embed
from repro.graphs.base import Line, Mesh, Ring
from repro.viz.ascii import render_distance_table, render_embedding_grid, render_sequence_table


class TestSequenceTable:
    def test_figure9_table_contains_all_rows(self):
        base = (4, 2, 3)
        text = render_sequence_table(
            24,
            {
                "f_L": lambda x: f_value(base, x),
                "g_L": lambda x: g_value(base, x),
                "h_L": lambda x: h_value(base, x),
            },
            title="Figure 9",
        )
        lines = text.splitlines()
        assert lines[0] == "Figure 9"
        assert len(lines) == 2 + 1 + 24  # title + header + separator + 24 rows
        assert "(0,0,0)" in lines[3]
        assert "f_L" in lines[1] and "h_L" in lines[1]

    def test_single_function(self):
        text = render_sequence_table(4, {"f": lambda x: (x,)})
        assert "(3)" in text


class TestDistanceTable:
    def test_contains_both_metrics(self):
        sequence = [(0, 0), (0, 1), (1, 1), (1, 0)]
        text = render_distance_table(sequence, (2, 2), title="distances")
        assert "δm" in text and "δt" in text
        assert len(text.splitlines()) == 3 + 4  # title + header + rule + 4 cyclic pairs

    def test_acyclic_has_one_fewer_row(self):
        sequence = [(0, 0), (0, 1), (1, 1)]
        text = render_distance_table(sequence, (2, 2), cyclic=False)
        assert len(text.splitlines()) == 2 + 2


class TestEmbeddingGrid:
    def test_one_dimensional_host(self):
        embedding = embed(Ring(6), Line(6))
        text = render_embedding_grid(embedding)
        assert len(text.splitlines()) == 1

    def test_two_dimensional_host_shows_all_ranks(self):
        embedding = line_in_graph_embedding(Mesh((3, 4)))
        text = render_embedding_grid(embedding, title="grid")
        assert text.splitlines()[0] == "grid"
        for rank in range(12):
            assert f"{rank}" in text

    def test_three_dimensional_host_has_planes(self):
        embedding = ring_in_graph_embedding(Mesh((4, 2, 3)))
        text = render_embedding_grid(embedding)
        assert text.count("plane") == 3

    def test_figure10_first_column_of_f_embedding(self):
        # Figure 5/10: f fills the first column of the first plane bottom-up with 0..l1-1
        # reflected; the grid renderer prints the first dimension upward.
        embedding = line_in_graph_embedding(Mesh((4, 3)))
        lines = render_embedding_grid(embedding).splitlines()
        first_column = [line.split()[0] for line in lines]
        assert first_column == ["11", "6", "5", "0"] or first_column[-1] == "0"
