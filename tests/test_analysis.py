"""Unit tests for the analysis package (metrics, verification, report tables)."""

import pytest

from repro.analysis.metrics import (
    EmbeddingReport,
    average_dilation_cost,
    dilation_cost,
    edge_congestion_cost,
    evaluate_embedding,
    expansion_cost,
)
from repro.analysis.report import Table, format_table
from repro.analysis.verify import (
    audit_dilation,
    verify_embedding,
    verify_prediction,
    verify_sequence_spread,
)
from repro.baselines import lexicographic_embedding
from repro.core.basic import f_sequence, line_in_graph_embedding, ring_in_graph_embedding
from repro.core.dispatch import embed
from repro.core.embedding import Embedding
from repro.exceptions import InvalidEmbeddingError
from repro.graphs.base import Line, Mesh, Torus


class TestMetrics:
    def test_dilation_and_average(self):
        embedding = line_in_graph_embedding(Mesh((4, 2, 3)))
        assert dilation_cost(embedding) == 1
        assert average_dilation_cost(embedding) == 1.0
        assert expansion_cost(embedding) == 1.0

    def test_congestion_positive(self):
        embedding = embed(Torus((4, 4)), Mesh((4, 4)))
        assert edge_congestion_cost(embedding) >= 1

    def test_evaluate_embedding_report(self):
        embedding = line_in_graph_embedding(Mesh((3, 4)))
        report = evaluate_embedding(embedding, with_congestion=True)
        assert isinstance(report, EmbeddingReport)
        assert report.dilation == 1
        assert report.valid
        row = report.as_row()
        assert row["dilation"] == 1
        assert row["valid"] == "yes"

    def test_evaluate_without_congestion(self):
        embedding = line_in_graph_embedding(Mesh((3, 4)))
        report = evaluate_embedding(embedding)
        assert report.congestion is None
        assert report.as_row()["congestion"] == "-"


class TestVerify:
    def test_verify_embedding_passes_for_valid(self):
        verify_embedding(line_in_graph_embedding(Mesh((3, 4))))

    def test_verify_embedding_raises_for_invalid(self):
        broken = Embedding(Line(2), Mesh((2,)), {(0,): (0,), (1,): (0,)})
        with pytest.raises(InvalidEmbeddingError):
            verify_embedding(broken)

    def test_audit_dilation_reports_worst_edge(self):
        embedding = lexicographic_embedding(Line(6), Mesh((2, 3)))
        audit = audit_dilation(embedding)
        assert audit.dilation == 3
        assert audit.num_edges == 5
        assert audit.worst_edge is not None
        a, b = audit.worst_edge
        assert embedding.host.distance(embedding[a], embedding[b]) == 3

    def test_verify_prediction(self):
        assert verify_prediction(line_in_graph_embedding(Mesh((3, 4))))
        assert verify_prediction(ring_in_graph_embedding(Mesh((3, 5))))
        broken = Embedding(Line(2), Mesh((2,)), {(0,): (0,), (1,): (0,)}, predicted_dilation=1)
        assert not verify_prediction(broken)

    def test_verify_sequence_spread(self):
        verify_sequence_spread(f_sequence((4, 2, 3)), universe_size=24, expected_spread=1)
        with pytest.raises(InvalidEmbeddingError):
            verify_sequence_spread(f_sequence((4, 2, 3)), universe_size=25, expected_spread=1)
        with pytest.raises(InvalidEmbeddingError):
            verify_sequence_spread(
                f_sequence((4, 2, 3)), universe_size=24, expected_spread=2
            )


class TestReportTables:
    def test_format_table_basic(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], columns=["a", "b"], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_infers_columns(self):
        text = format_table([{"x": 1}, {"y": 2}])
        assert "x" in text and "y" in text

    def test_float_formatting(self):
        text = format_table([{"v": 1.23456}])
        assert "1.235" in text

    def test_table_object(self):
        table = Table(title="costs")
        table.add_row(strategy="paper", dilation=1)
        table.add_row(strategy="baseline", dilation=5)
        rendered = table.render()
        assert "paper" in rendered and "baseline" in rendered
        table.extend([{"strategy": "random", "dilation": 9}])
        assert len(table.rows) == 3
