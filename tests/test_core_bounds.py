"""Unit tests for lower bounds, known optima and the Appendix ε sequence."""

from fractions import Fraction

import math
import pytest

from repro.core.bounds import (
    asymptotic_lower_bound_constant,
    epsilon_sequence,
    epsilon_value,
    fitzgerald_cube_mesh_in_line,
    fitzgerald_square_mesh_in_line,
    harper_hypercube_in_line,
    lowering_dilation_lower_bound,
    mesh_ball_size_lower_bound,
    mn86_square_torus_in_ring,
)
from repro.core.square import embed_square_lowering
from repro.graphs.base import Line, Mesh


class TestBallBound:
    def test_small_values(self):
        assert mesh_ball_size_lower_bound(2, 1) == 3
        assert mesh_ball_size_lower_bound(3, 2) == 10

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            mesh_ball_size_lower_bound(0, 1)


class TestTheorem47Bound:
    def test_bound_is_positive_and_grows_with_p(self):
        values = [lowering_dilation_lower_bound(3, 1, p) for p in (3, 5, 9, 17)]
        assert all(v >= 1 for v in values)
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_bound_never_exceeds_construction(self):
        # The constructed dilation l^((d-c)/c) must dominate the lower bound.
        for d, c, l in [(2, 1, 4), (2, 1, 8), (3, 1, 4), (3, 2, 4), (4, 2, 3)]:
            construction = round(l ** ((d - c) / c))
            bound = lowering_dilation_lower_bound(d, c, l)
            assert bound <= max(construction, 1) * 2  # within the constant-factor regime
            # and it is a genuine lower bound for at least one verified instance:

    def test_bound_is_a_true_lower_bound_for_measured_embeddings(self):
        # For the (l, l)-mesh in a line the optimal dilation is l; the computed
        # bound must not exceed it.
        for l in (3, 4, 5, 6):
            assert lowering_dilation_lower_bound(2, 1, l) <= l

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            lowering_dilation_lower_bound(2, 2, 4)
        with pytest.raises(ValueError):
            lowering_dilation_lower_bound(2, 1, 1)

    def test_asymptotic_constant(self):
        constant = asymptotic_lower_bound_constant(3, 1)
        assert 0 < constant < 1
        with pytest.raises(ValueError):
            asymptotic_lower_bound_constant(2, 2)


class TestKnownOptima:
    def test_fitzgerald_square(self):
        assert fitzgerald_square_mesh_in_line(5) == 5
        with pytest.raises(ValueError):
            fitzgerald_square_mesh_in_line(1)

    def test_fitzgerald_cube(self):
        # ⌊3l²/4 + l/2⌋
        assert fitzgerald_cube_mesh_in_line(2) == 4
        assert fitzgerald_cube_mesh_in_line(3) == 8
        assert fitzgerald_cube_mesh_in_line(4) == 14

    def test_mn86(self):
        assert mn86_square_torus_in_ring(7) == 7

    def test_harper(self):
        # Σ_{k=0}^{d-1} C(k, ⌊k/2⌋): d=1 -> 1, d=2 -> 2, d=3 -> 4, d=4 -> 7, d=5 -> 13.
        assert [harper_hypercube_in_line(d) for d in range(1, 6)] == [1, 2, 4, 7, 13]

    def test_our_square_mesh_in_line_matches_fitzgerald(self):
        # Section 5's comparison: for the (l,l)-mesh in a line the reproduction is truly optimal.
        for l in (3, 4, 5):
            ours = embed_square_lowering(Mesh((l, l)), Line(l * l)).dilation()
            assert ours == fitzgerald_square_mesh_in_line(l)

    def test_our_cube_mesh_in_line_within_constant(self):
        # Section 5: ours is l^2, optimal is ⌊3l²/4 + l/2⌋, ratio at most 4/3.
        for l in (3, 4):
            ours = l * l
            optimal = fitzgerald_cube_mesh_in_line(l)
            assert optimal <= ours <= math.ceil(optimal * 4 / 3)


class TestEpsilonSequence:
    def test_initial_values(self):
        # Appendix: ε_0 = ε_1 = ε_2 = 1.
        assert epsilon_value(0) == 1
        assert epsilon_value(1) == 1
        assert epsilon_value(2) == 1
        assert epsilon_value(3) == Fraction(7, 8)

    def test_strictly_decreasing_from_two(self):
        values = epsilon_sequence(15)
        for m in range(3, 15):
            assert values[m] < values[m - 1]

    def test_relates_harper_to_power_of_two(self):
        # Σ_{k=0}^{d-1} C(k, ⌊k/2⌋) = ε_(d-1) · 2^(d-1).
        for d in range(1, 12):
            assert harper_hypercube_in_line(d) == epsilon_value(d - 1) * 2 ** (d - 1)

    def test_ratio_to_our_embedding_grows(self):
        # Our hypercube-in-line dilation is 2^(d-1); the ratio to Harper's optimum
        # is 1/ε_(d-1), which increases without bound (Section 5's discussion).
        ratios = [Fraction(2 ** (d - 1), harper_hypercube_in_line(d)) for d in range(4, 12)]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))

    def test_invalid(self):
        with pytest.raises(ValueError):
            epsilon_value(-1)
        with pytest.raises(ValueError):
            epsilon_sequence(0)
