"""Differential tests for the vectorized netsim kernels.

The array path of the simulation layer must reproduce the per-message loop
reference *exactly*: routes node-for-node (same hops, same order, same
torus tie-breaks), analytic phase statistics field-for-field, and the
discrete-event simulation float-for-float.  Message sizes in the property
tests are dyadic rationals (multiples of 1/4 with small magnitudes), for
which IEEE-754 summation is exact in any order — so even the accumulated
float statistics are compared with ``==``, never ``approx``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import random_embedding
from repro.core.dispatch import embed
from repro.exceptions import SimulationError
from repro.graphs.base import Mesh, Torus, make_graph
from repro.netsim import (
    HostNetwork,
    Message,
    TrafficPattern,
    accumulate_link_loads,
    all_to_all_in_groups_traffic,
    analytic_phase_estimate,
    expand_routes,
    neighbor_exchange_traffic,
    route_message,
    simulate_phase,
    transpose_traffic,
)
from repro.numbering.arrays import indices_to_digits, signed_offset_digits
from repro.runtime import use_context

from .strategies import graph_kinds, same_size_shape_pairs, small_shapes

#: Dyadic message sizes: float sums over these are exact in any order.
DYADIC_SIZES = st.sampled_from([0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.75])


@st.composite
def host_with_endpoints(draw):
    """A host graph plus a batch of (source, target) rank pairs."""
    shape = draw(small_shapes(max_dim=3))
    kind = draw(graph_kinds)
    graph = make_graph(kind, shape)
    count = draw(st.integers(min_value=0, max_value=30))
    ranks = st.integers(min_value=0, max_value=graph.size - 1)
    pairs = draw(st.lists(st.tuples(ranks, ranks), min_size=count, max_size=count))
    return graph, pairs


@st.composite
def placed_phases(draw):
    """A (network, embedding, traffic) triple covering the whole input space."""
    guest_shape, host_shape = draw(same_size_shape_pairs(max_dim=3))
    guest = make_graph(draw(graph_kinds), guest_shape)
    host = make_graph(draw(graph_kinds), host_shape)
    embedding = random_embedding(guest, host, seed=draw(st.integers(0, 5)))
    ranks = st.integers(min_value=0, max_value=guest.size - 1)
    messages = tuple(
        Message(guest.index_node(a), guest.index_node(b), size)
        for a, b, size in draw(
            st.lists(st.tuples(ranks, ranks, DYADIC_SIZES), min_size=0, max_size=25)
        )
    )
    return HostNetwork(host), embedding, TrafficPattern("hypothesis", messages)


class TestRouteExpansion:
    @settings(max_examples=60, deadline=None)
    @given(host_with_endpoints())
    def test_array_routes_match_loop_node_for_node(self, case):
        graph, pairs = case
        network = HostNetwork(graph)
        space = network.link_index_space()
        sources = np.asarray([a for a, _ in pairs], dtype=np.int64)
        targets = np.asarray([b for _, b in pairs], dtype=np.int64)
        routes = expand_routes(
            space,
            indices_to_digits(sources, graph.shape),
            indices_to_digits(targets, graph.shape),
        )
        assert routes.num_messages == len(pairs)
        assert routes.total_hops == int(routes.hops.sum())
        for index, (a, b) in enumerate(pairs):
            reference = route_message(
                network, graph.index_node(a), graph.index_node(b)
            )
            ids = routes.link_ids[routes.starts[index] : routes.starts[index + 1]]
            assert space.link_tuples(ids) == reference

    @settings(max_examples=60, deadline=None)
    @given(host_with_endpoints())
    def test_offset_magnitudes_sum_to_graph_distance(self, case):
        graph, pairs = case
        if not pairs:
            return
        sources = np.asarray([a for a, _ in pairs], dtype=np.int64)
        targets = np.asarray([b for _, b in pairs], dtype=np.int64)
        offsets = signed_offset_digits(
            indices_to_digits(sources, graph.shape),
            indices_to_digits(targets, graph.shape),
            graph.shape,
            torus=graph.is_torus,
        )
        distances = graph.distance_indices(sources, targets)
        assert (np.abs(offsets).sum(axis=1) == distances).all()

    def test_link_ids_are_unique_per_route(self):
        # A shortest path never revisits a link; the flat ids must agree.
        graph = Torus((4, 3, 5))
        network = HostNetwork(graph)
        space = network.link_index_space()
        rng = np.random.default_rng(7)
        sources = rng.integers(0, graph.size, 100)
        targets = rng.integers(0, graph.size, 100)
        routes = expand_routes(
            space,
            indices_to_digits(sources, graph.shape),
            indices_to_digits(targets, graph.shape),
        )
        for index in range(100):
            ids = routes.link_ids[routes.starts[index] : routes.starts[index + 1]]
            assert len(set(ids.tolist())) == len(ids)

    def test_decode_round_trips_link_endpoints(self):
        graph = Mesh((3, 4))
        network = HostNetwork(graph)
        space = network.link_index_space()
        routes = expand_routes(
            space,
            indices_to_digits(np.arange(graph.size), graph.shape),
            indices_to_digits(np.full(graph.size, graph.size - 1), graph.shape),
        )
        sources, targets = space.decode(routes.link_ids)
        for u, v in zip(sources.tolist(), targets.tolist()):
            assert network.link_exists(
                (graph.index_node(u), graph.index_node(v))
            )


class TestAnalyticEstimateDifferential:
    @settings(max_examples=50, deadline=None)
    @given(placed_phases())
    def test_array_equals_loop_exactly(self, case):
        network, embedding, traffic = case
        with use_context(backend="array"):
            array = analytic_phase_estimate(network, embedding, traffic)
        with use_context(backend="loop"):
            loop = analytic_phase_estimate(network, embedding, traffic)
        assert array == loop  # frozen dataclass: field-for-field, floats included

    @pytest.mark.parametrize(
        "guest,host",
        [
            (Torus((4, 6)), Mesh((2, 2, 2, 3))),
            (Mesh((4, 6)), Torus((24,))),
            (Torus((8, 8)), Mesh((4, 4, 4))),
        ],
    )
    def test_paper_traffic_patterns_agree(self, guest, host):
        network = HostNetwork(host)
        embedding = embed(guest, host)
        for traffic in (
            neighbor_exchange_traffic(guest),
            transpose_traffic(guest),
            all_to_all_in_groups_traffic(guest),
        ):
            with use_context(backend="array"):
                array = analytic_phase_estimate(network, embedding, traffic)
            with use_context(backend="loop"):
                loop = analytic_phase_estimate(network, embedding, traffic)
            assert array == loop

    def test_link_loads_match_loop_reference_per_link(self):
        guest, host = Torus((4, 4)), Mesh((2, 2, 2, 2))
        network = HostNetwork(host)
        embedding = embed(guest, host)
        traffic = neighbor_exchange_traffic(guest)
        space = network.link_index_space()
        sources, targets, sizes = traffic.endpoint_rank_arrays(guest.shape)
        images = embedding.host_index_array()
        routes = expand_routes(
            space,
            indices_to_digits(images[sources], host.shape),
            indices_to_digits(images[targets], host.shape),
        )
        occupancy = network.cost_model.alpha + sizes / network.cost_model.bandwidth
        counts, volume, busy = accumulate_link_loads(space, routes, sizes, occupancy)
        reference: dict = {}
        for source, target, size in traffic.placed(embedding):
            for link in route_message(network, source, target):
                reference[link] = reference.get(link, 0) + 1
        loaded = np.flatnonzero(counts)
        assert len(loaded) == len(reference)
        for link_id, tuples in zip(loaded, space.link_tuples(loaded)):
            assert counts[link_id] == reference[tuples]
            assert volume[link_id] == float(reference[tuples])
            assert busy[link_id] == 2.0 * reference[tuples]  # alpha=1, size=1

    def test_empty_traffic(self):
        guest, host = Torus((3, 4)), Mesh((3, 4))
        network = HostNetwork(host)
        embedding = embed(guest, host)
        empty = TrafficPattern("empty", ())
        for backend in ("array", "loop"):
            with use_context(backend=backend):
                statistics = analytic_phase_estimate(network, embedding, empty)
            assert statistics.num_messages == 0
            assert statistics.estimated_completion_time == 0.0

    def test_array_path_validates_topology_and_endpoints(self):
        guest, host = Torus((4, 4)), Mesh((4, 4))
        embedding = embed(guest, host)
        with use_context(backend="array"):
            with pytest.raises(SimulationError):
                analytic_phase_estimate(
                    HostNetwork(Mesh((2, 8))),
                    embedding,
                    neighbor_exchange_traffic(guest),
                )
            bad = TrafficPattern("bad", (Message((9, 9), (0, 0)),))
            with pytest.raises(SimulationError):
                analytic_phase_estimate(HostNetwork(host), embedding, bad)


class TestSimulationDifferential:
    @settings(max_examples=40, deadline=None)
    @given(placed_phases())
    def test_simulate_phase_array_equals_loop_exactly(self, case):
        network, embedding, traffic = case
        with use_context(backend="array"):
            array = simulate_phase(network, embedding, traffic)
        with use_context(backend="loop"):
            loop = simulate_phase(network, embedding, traffic)
        assert array.makespan == loop.makespan
        assert array.per_message_completion == loop.per_message_completion
        assert array.statistics == loop.statistics

    def test_event_limit_matches_loop_semantics(self):
        guest, host = Torus((4, 4)), Mesh((2, 2, 2, 2))
        network = HostNetwork(host)
        embedding = embed(guest, host)
        traffic = neighbor_exchange_traffic(guest)
        for backend in ("array", "loop"):
            with use_context(backend=backend), pytest.raises(SimulationError):
                simulate_phase(network, embedding, traffic, max_events=3)

    def test_cost_model_parameters_thread_through_both_paths(self):
        from repro.netsim import CostModel

        guest, host = Torus((4, 4)), Mesh((4, 4))
        network = HostNetwork(host, CostModel(alpha=0.5, bandwidth=4.0))
        embedding = embed(guest, host)
        traffic = neighbor_exchange_traffic(guest, message_size=2.0)
        # Through the deprecated shim on purpose — it must stay equivalent.
        with pytest.warns(DeprecationWarning):
            array = simulate_phase(network, embedding, traffic, method="array")
        with use_context(backend="loop"):
            loop = simulate_phase(network, embedding, traffic)
        assert array.makespan == loop.makespan
        assert array.statistics == loop.statistics


class TestAllToAllGroupsTraffic:
    def test_message_count_and_grouping(self):
        guest = Torus((4, 6))
        pattern = all_to_all_in_groups_traffic(guest)
        # Default group size: the last dimension (6) -> n * (g - 1) messages.
        assert len(pattern) == guest.size * 5
        # Every message stays within one pencil (equal leading coordinates).
        for message in pattern:
            assert message.source[:-1] == message.destination[:-1]
            assert message.source != message.destination

    def test_explicit_group_size(self):
        guest = Mesh((4, 4))
        pattern = all_to_all_in_groups_traffic(guest, group_size=8)
        assert len(pattern) == 16 * 7

    def test_invalid_group_size_rejected(self):
        guest = Mesh((4, 4))
        with pytest.raises(SimulationError):
            all_to_all_in_groups_traffic(guest, group_size=5)
        with pytest.raises(SimulationError):
            all_to_all_in_groups_traffic(guest, group_size=0)


class TestTrafficRegistry:
    def test_names_resolve(self):
        from repro.netsim import traffic_pattern, traffic_pattern_names

        guest = Torus((3, 4))
        for name in traffic_pattern_names():
            pattern = traffic_pattern(name, guest)
            assert isinstance(pattern, TrafficPattern)

    def test_unknown_name_rejected(self):
        from repro.netsim import traffic_pattern

        with pytest.raises(SimulationError):
            traffic_pattern("carrier-pigeon", Torus((3, 4)))

    def test_endpoint_rank_arrays_round_trip(self):
        guest = Torus((3, 4))
        pattern = neighbor_exchange_traffic(guest)
        sources, targets, sizes = pattern.endpoint_rank_arrays(guest.shape)
        assert len(sources) == len(targets) == len(sizes) == len(pattern)
        for rank_a, rank_b, message in zip(
            sources.tolist(), targets.tolist(), pattern
        ):
            assert guest.index_node(rank_a) == message.source
            assert guest.index_node(rank_b) == message.destination
