"""Unit tests for sequences and spreads (Definition 8, Figure 3)."""

import pytest

from repro.numbering.sequences import (
    cyclic_pairs,
    cyclic_spread,
    is_bijective_sequence,
    is_cyclic_gray_sequence,
    is_gray_sequence,
    pairwise_distances,
    sequence_pairs,
    sequence_spread,
)

# A Figure-3-style function f : [9] -> Ω_(3,3): a column-major snake whose
# acyclic and cyclic spreads differ, illustrating Definition 8 exactly as the
# paper's worked example does.
FIGURE3_SEQUENCE = [
    (0, 0),
    (1, 0),
    (2, 0),
    (2, 1),
    (1, 1),
    (0, 1),
    (0, 2),
    (1, 2),
    (2, 2),
]


class TestFigure3Style:
    def test_acyclic_spreads(self):
        # Successive snake elements are always adjacent, so both spreads are 1.
        assert sequence_spread(FIGURE3_SEQUENCE, metric="mesh") == 1
        assert sequence_spread(FIGURE3_SEQUENCE, metric="torus", shape=(3, 3)) == 1

    def test_cyclic_spreads(self):
        # Viewing the same function cyclically adds the wrap pair (2,2)->(0,0),
        # which dominates: δm-spread 4 but δt-spread only 2 (wrap-around helps).
        assert cyclic_spread(FIGURE3_SEQUENCE, metric="torus", shape=(3, 3)) == 2
        assert cyclic_spread(FIGURE3_SEQUENCE, metric="mesh") == 4

    def test_pairwise_distance_lengths(self):
        assert len(pairwise_distances(FIGURE3_SEQUENCE, cyclic=False)) == 8
        assert len(pairwise_distances(FIGURE3_SEQUENCE, cyclic=True)) == 9


class TestPairs:
    def test_sequence_pairs(self):
        assert list(sequence_pairs([(0,), (1,), (2,)])) == [((0,), (1,)), ((1,), (2,))]

    def test_cyclic_pairs_include_wraparound(self):
        pairs = list(cyclic_pairs([(0,), (1,), (2,)]))
        assert pairs[-1] == ((2,), (0,))
        assert len(pairs) == 3


class TestSpreads:
    def test_empty_sequence(self):
        assert sequence_spread([]) == 0
        assert cyclic_spread([]) == 0

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            sequence_spread([(0,), (1,)], metric="euclidean")

    def test_torus_metric_requires_shape(self):
        with pytest.raises(ValueError):
            sequence_spread([(0,), (1,)], metric="torus")

    def test_gray_predicates(self):
        seq = [(0, 0), (0, 1), (1, 1), (1, 0)]
        assert is_gray_sequence(seq)
        assert is_cyclic_gray_sequence(seq)
        assert not is_gray_sequence([(0, 0), (1, 1)])

    def test_bijective_sequence(self):
        assert is_bijective_sequence([(0,), (1,)], 2)
        assert not is_bijective_sequence([(0,), (0,)], 2)
        assert not is_bijective_sequence([(0,)], 2)
