"""Unit tests for same-shape embeddings (Definition 35, Lemma 36)."""

import pytest

from repro.core.same_shape import same_shape_embedding, t_vector_value, torus_in_mesh_same_shape
from repro.exceptions import ShapeMismatchError
from repro.graphs.base import Mesh, Torus


class TestTVector:
    def test_componentwise_t(self):
        assert t_vector_value((4, 3), (1, 1)) == (2, 2)
        assert t_vector_value((4, 3), (0, 0)) == (0, 0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            t_vector_value((4, 3), (1, 1, 1))

    def test_is_a_bijection_per_dimension(self):
        shape = (5, 4)
        images = {t_vector_value(shape, node) for node in Mesh(shape).nodes()}
        assert len(images) == 20


class TestTorusInMesh:
    @pytest.mark.parametrize("shape", [(3, 3), (4, 5), (3, 4, 3), (5,)])
    def test_dilation_two(self, shape):
        embedding = torus_in_mesh_same_shape(Torus(shape), Mesh(shape))
        embedding.validate()
        assert embedding.dilation() == 2

    def test_hypercube_special_case_dilation_one(self):
        embedding = torus_in_mesh_same_shape(Torus((2, 2, 2)), Mesh((2, 2, 2)))
        embedding.validate()
        assert embedding.dilation() == 1

    def test_shape_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            torus_in_mesh_same_shape(Torus((3, 3)), Mesh((3, 4)))


class TestSameShapeDispatch:
    def test_identity_cases(self):
        for guest, host in [
            (Mesh((3, 4)), Mesh((3, 4))),
            (Mesh((3, 4)), Torus((3, 4))),
            (Torus((3, 4)), Torus((3, 4))),
            (Torus((2, 2)), Mesh((2, 2))),  # hypercube: identity suffices
        ]:
            embedding = same_shape_embedding(guest, host)
            embedding.validate()
            assert embedding.dilation() == 1

    def test_torus_in_mesh_uses_t(self):
        embedding = same_shape_embedding(Torus((3, 4)), Mesh((3, 4)))
        assert embedding.strategy == "same-shape:T_L"
        assert embedding.dilation() == 2

    def test_shape_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            same_shape_embedding(Mesh((3, 4)), Mesh((4, 3)))
