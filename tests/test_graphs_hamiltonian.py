"""Unit tests for Hamiltonian paths and circuits (Corollaries 18, 25, 29)."""

import pytest
from hypothesis import given

from repro.graphs.base import Line, Mesh, Ring, Torus
from repro.graphs.hamiltonian import (
    find_hamiltonian_circuit,
    hamiltonian_path,
    has_hamiltonian_circuit,
)

from .conftest import small_shapes


def _assert_valid_circuit(graph, circuit):
    assert circuit is not None
    assert len(circuit) == graph.size
    assert len(set(circuit)) == graph.size
    for i in range(len(circuit)):
        assert graph.distance(circuit[i], circuit[(i + 1) % len(circuit)]) == 1


def _assert_valid_path(graph, path):
    assert len(path) == graph.size
    assert len(set(path)) == graph.size
    for a, b in zip(path, path[1:]):
        assert graph.distance(a, b) == 1


class TestCorollary18:
    """No mesh of odd size has a Hamiltonian circuit."""

    @pytest.mark.parametrize("shape", [(3, 3), (3, 5), (3, 3, 3), (5, 3)])
    def test_odd_meshes_have_no_circuit(self, shape):
        mesh = Mesh(shape)
        assert not has_hamiltonian_circuit(mesh)
        assert find_hamiltonian_circuit(mesh) is None

    def test_lines_have_no_circuit(self):
        assert find_hamiltonian_circuit(Line(6)) is None


class TestCorollary25:
    """Every even-size mesh of dimension > 1 has a Hamiltonian circuit."""

    @pytest.mark.parametrize("shape", [(2, 3), (4, 3), (3, 4), (4, 2, 3), (3, 3, 2), (2, 2, 2, 2)])
    def test_even_meshes_have_circuits(self, shape):
        mesh = Mesh(shape)
        assert has_hamiltonian_circuit(mesh)
        _assert_valid_circuit(mesh, find_hamiltonian_circuit(mesh))


class TestCorollary29:
    """Every torus has a Hamiltonian circuit."""

    @pytest.mark.parametrize("shape", [(3, 3), (3, 5), (4, 2, 3), (5, 5), (2, 2, 3), (7,)])
    def test_toruses_have_circuits(self, shape):
        torus = Torus(shape)
        assert has_hamiltonian_circuit(torus)
        _assert_valid_circuit(torus, find_hamiltonian_circuit(torus))

    def test_size_two_ring_is_excluded(self):
        # A 2-node ring is a single edge; a circuit would repeat that edge.
        assert not has_hamiltonian_circuit(Ring(2))


class TestHamiltonianPath:
    @pytest.mark.parametrize("shape", [(3, 3), (4, 2, 3), (5,), (2, 2, 2)])
    def test_meshes_and_toruses_have_hamiltonian_paths(self, shape):
        _assert_valid_path(Mesh(shape), hamiltonian_path(Mesh(shape)))
        _assert_valid_path(Torus(shape), hamiltonian_path(Torus(shape)))

    @given(small_shapes(max_dim=3, max_len=4))
    def test_hamiltonian_path_property(self, shape):
        mesh = Mesh(shape)
        _assert_valid_path(mesh, hamiltonian_path(mesh))


class TestCircuitProperty:
    @given(small_shapes(min_dim=2, max_dim=3, max_len=4))
    def test_circuit_exists_iff_corollaries_say_so(self, shape):
        mesh = Mesh(shape)
        circuit = find_hamiltonian_circuit(mesh)
        if mesh.size % 2 == 0:
            _assert_valid_circuit(mesh, circuit)
        else:
            assert circuit is None
        torus = Torus(shape)
        _assert_valid_circuit(torus, find_hamiltonian_circuit(torus))
