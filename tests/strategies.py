"""Shared hypothesis strategies for the test suite.

Kept separate from ``conftest.py`` so they are importable both as
``tests.strategies`` and via the historical ``from .conftest import
small_shapes`` spelling (``conftest`` re-exports everything defined here).
"""

from __future__ import annotations

import math

from hypothesis import strategies as st

from repro.graphs.faults import FaultSpec
from repro.netsim.weights import LinkWeightSpec
from repro.types import GraphKind
from repro.utils.intmath import prime_factorization

__all__ = [
    "MAX_PROPERTY_SIZE",
    "small_shapes",
    "small_even_shapes",
    "graph_kinds",
    "same_size_shape_pairs",
    "unequal_size_shape_pairs",
    "fault_specs",
    "link_weight_specs",
]


MAX_PROPERTY_SIZE = 600


@st.composite
def small_shapes(draw, min_dim: int = 1, max_dim: int = 4, min_len: int = 2, max_len: int = 6):
    """Random shapes with a bounded node count, suitable for exhaustive checks."""
    dimension = draw(st.integers(min_value=min_dim, max_value=max_dim))
    shape = []
    for _ in range(dimension):
        shape.append(draw(st.integers(min_value=min_len, max_value=max_len)))
        if math.prod(shape) > MAX_PROPERTY_SIZE:
            # Keep sizes small enough for exhaustive verification.
            shape[-1] = min_len
    return tuple(shape)


@st.composite
def small_even_shapes(draw, **kwargs):
    """Random shapes of even size (at least one even length)."""
    shape = draw(small_shapes(**kwargs))
    if math.prod(shape) % 2 == 1:
        shape = (2,) + shape[1:]
    return shape


graph_kinds = st.sampled_from([GraphKind.TORUS, GraphKind.MESH])


def _prime_factors(value: int) -> list:
    """Prime factors of ``value`` with multiplicity, smallest first."""
    return [
        prime for prime, exponent in prime_factorization(value) for _ in range(exponent)
    ]


@st.composite
def same_size_shape_pairs(draw, **kwargs):
    """Random (guest shape, host shape) pairs with equal node counts.

    The host shape is a random regrouping of the guest size's prime
    factorization (shuffled factors split at random cut points, each group
    multiplied out), so the pair covers everything from a permutation of the
    guest shape down to the 1-dimensional collapse — the whole input space of
    ``embed`` / ``strategy_for``, supported or not.
    """
    guest = draw(small_shapes(**kwargs))
    factors = _prime_factors(math.prod(guest))
    order = draw(st.permutations(factors))
    group_count = draw(st.integers(min_value=1, max_value=len(order)))
    cuts = (
        sorted(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=len(order) - 1),
                    min_size=group_count - 1,
                    max_size=group_count - 1,
                    unique=True,
                )
            )
        )
        if group_count > 1
        else []
    )
    bounds = [0] + cuts + [len(order)]
    host = tuple(
        math.prod(order[start:stop]) for start, stop in zip(bounds, bounds[1:])
    )
    return guest, host


@st.composite
def unequal_size_shape_pairs(draw, **kwargs):
    """Random (guest shape, host shape) pairs with ``Π guest < Π host``.

    Two independent shapes, ordered by node count; equal products bump the
    host's first length so the guest is always *strictly* smaller — the
    input space of the expansion (sub-embedding) axis.
    """
    first = draw(small_shapes(**kwargs))
    second = draw(small_shapes(**kwargs))
    guest, host = sorted((first, second), key=math.prod)
    if math.prod(guest) == math.prod(host):
        host = (host[0] + 1,) + host[1:]
    return guest, host


@st.composite
def fault_specs(draw, *, max_nodes: int = 2, max_links: int = 3):
    """Seeded fault masks, biased toward small knockouts (never all-zero)."""
    num_nodes = draw(st.integers(min_value=0, max_value=max_nodes))
    num_links = draw(st.integers(min_value=0, max_value=max_links))
    if num_nodes == 0 and num_links == 0:
        num_links = 1
    seed = draw(st.integers(min_value=0, max_value=999))
    return FaultSpec(num_nodes=num_nodes, num_links=num_links, seed=seed)


link_weight_specs = st.builds(
    LinkWeightSpec,
    kind=st.sampled_from(["uniform", "dimension", "random"]),
    scale=st.sampled_from([0.25, 0.5, 1.0, 2.0]),
    seed=st.integers(min_value=0, max_value=99),
)
