"""Shared hypothesis strategies for the test suite.

Kept separate from ``conftest.py`` so they are importable both as
``tests.strategies`` and via the historical ``from .conftest import
small_shapes`` spelling (``conftest`` re-exports everything defined here).
"""

from __future__ import annotations

import math

from hypothesis import strategies as st

from repro.types import GraphKind

__all__ = ["MAX_PROPERTY_SIZE", "small_shapes", "small_even_shapes", "graph_kinds"]


MAX_PROPERTY_SIZE = 600


@st.composite
def small_shapes(draw, min_dim: int = 1, max_dim: int = 4, min_len: int = 2, max_len: int = 6):
    """Random shapes with a bounded node count, suitable for exhaustive checks."""
    dimension = draw(st.integers(min_value=min_dim, max_value=max_dim))
    shape = []
    for _ in range(dimension):
        shape.append(draw(st.integers(min_value=min_len, max_value=max_len)))
        if math.prod(shape) > MAX_PROPERTY_SIZE:
            # Keep sizes small enough for exhaustive verification.
            shape[-1] = min_len
    return tuple(shape)


@st.composite
def small_even_shapes(draw, **kwargs):
    """Random shapes of even size (at least one even length)."""
    shape = draw(small_shapes(**kwargs))
    if math.prod(shape) % 2 == 1:
        shape = (2,) + shape[1:]
    return shape


graph_kinds = st.sampled_from([GraphKind.TORUS, GraphKind.MESH])
