"""Tests for the plugin registries of strategies and traffic patterns."""

import pytest

from repro.exceptions import SimulationError
from repro.graphs.base import Mesh, Torus
from repro.netsim import traffic_pattern, traffic_pattern_names
from repro.runtime import ConstructionCache, use_context
from repro.runtime.registry import (
    STRATEGIES,
    TRAFFIC_PATTERNS,
    Registry,
    build_strategy,
    build_traffic,
    register_strategy,
    register_traffic,
    strategy_builder,
    strategy_names,
    traffic_names,
)

pytestmark = pytest.mark.smoke

PAIR = (Torus((4, 6)), Mesh((2, 2, 2, 3)))


def _unregister(registry, name):
    registry._entries.pop(name, None)


class TestRegistryMechanics:
    def test_default_strategies_registered(self):
        assert strategy_names() == ("paper", "lexicographic", "bfs", "random")

    def test_default_traffic_registered(self):
        assert traffic_names() == (
            "neighbor-exchange",
            "transpose",
            "all-to-all-groups",
            "random-permutation",
            "hotspot",
            "bursty",
        )

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate embedding strategy"):
            register_strategy("paper", lambda guest, host: None)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="choose from paper, lexicographic"):
            strategy_builder("psychic")

    def test_decorator_registration(self):
        registry = Registry("probe")

        @registry.register("one")
        def builder():
            return 1

        assert registry.get("one") is builder
        assert "one" in registry and len(registry) == 1

    def test_early_registration_preempts_the_default_loader(self):
        def load_defaults():
            registry.register("paper", "builtin")
            registry.register("extra", "builtin-extra")

        registry = Registry("probe", load_defaults)
        registry.register("paper", "mine")  # before any lookup
        assert registry.get("paper") == "mine"  # pre-emption, not ValueError
        assert registry.get("extra") == "builtin-extra"
        # after loading, duplicates are errors again
        with pytest.raises(ValueError, match="duplicate probe"):
            registry.register("paper", "other")

    def test_failing_loader_is_retried_on_next_lookup(self):
        attempts = []

        def flaky_loader():
            attempts.append(1)
            if len(attempts) == 1:
                raise ImportError("transient")
            registry.register("late", "ok")

        registry = Registry("probe", flaky_loader)
        with pytest.raises(ImportError):
            registry.names()
        assert registry.get("late") == "ok"  # second lookup retried the load
        assert len(attempts) == 2

    def test_custom_strategy_plugs_into_the_shared_table(self):
        guest, host = PAIR

        @register_strategy("test-identity-rank")
        def rank_order(guest, host):
            from repro.baselines import lexicographic_embedding

            return lexicographic_embedding(guest, host)

        try:
            assert "test-identity-rank" in strategy_names()
            embedding = build_strategy("test-identity-rank", guest, host)
            assert embedding.is_bijective()
        finally:
            _unregister(STRATEGIES, "test-identity-rank")

    def test_custom_traffic_reaches_the_netsim_resolver(self):
        from repro.netsim import TrafficPattern

        @register_traffic("test-silence")
        def silence(guest, *, message_size=1.0):
            return TrafficPattern("silence", ())

        try:
            assert "test-silence" in traffic_pattern_names()
            assert len(traffic_pattern("test-silence", PAIR[0])) == 0
        finally:
            _unregister(TRAFFIC_PATTERNS, "test-silence")


class TestSharedTables:
    def test_survey_and_experiments_resolve_the_same_objects(self):
        # The dedup satellite: one registry, no per-module copies left.
        import repro.experiments.simulation_tables as simulation_tables
        import repro.survey.runner as runner

        assert not hasattr(runner, "STRATEGY_BUILDERS")
        assert not hasattr(simulation_tables, "STRATEGY_BUILDERS")
        assert simulation_tables.strategy_names is strategy_names

    def test_traffic_resolution_matches_direct_builders(self):
        from repro.netsim import neighbor_exchange_traffic

        guest = Torus((3, 4))
        assert build_traffic("neighbor-exchange", guest) == neighbor_exchange_traffic(
            guest
        )

    def test_unknown_traffic_is_a_simulation_error(self):
        with pytest.raises(SimulationError, match="unknown traffic pattern"):
            traffic_pattern("psychic", Torus((3, 4)))


class TestStrategyCaching:
    def test_baselines_memoize_under_their_name(self):
        guest, host = PAIR
        cache = ConstructionCache()
        with use_context(cache=cache):
            first = build_strategy("lexicographic", guest, host)
            second = build_strategy("lexicographic", guest, host)
        assert cache.hits == 1
        assert second.mapping == first.mapping
        assert ("embedding", "strategy:lexicographic") == tuple(
            next(iter(cache.data))[:2]
        )

    def test_paper_strategy_uses_the_family_key(self):
        guest, host = PAIR
        cache = ConstructionCache()
        with use_context(cache=cache):
            build_strategy("paper", guest, host)
            build_strategy("paper", guest, host)
        assert cache.hits == 1
        families = {key[1] for key in cache.data if key[0] == "embedding"}
        assert families == {"increasing"}

    def test_no_cache_no_memoization(self):
        guest, host = PAIR
        first = build_strategy("bfs", guest, host)
        second = build_strategy("bfs", guest, host)
        assert first is not second
        assert first.mapping == second.mapping
