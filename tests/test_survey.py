"""Tests for the parallel survey subsystem (scenarios, runner, store, CLI)."""

import json
import math

import pytest

from repro.cli import main
from repro.survey import (
    Scenario,
    SurveyOptions,
    SurveyRecord,
    all_pairs,
    merge_shards,
    read_csv,
    read_json,
    read_records,
    run_survey,
    scenarios_for_suite,
    shapes_up_to,
    suite_names,
    write_csv,
    write_json,
    write_records,
)
from repro.survey.runner import evaluate_scenario


class TestScenarios:
    def test_shapes_up_to_is_deterministic_and_bounded(self):
        shapes = shapes_up_to(24)
        assert shapes == shapes_up_to(24)
        assert all(4 <= math.prod(shape) <= 24 for shape in shapes)
        assert all(all(length >= 2 for length in shape) for shape in shapes)
        assert (2, 2, 3) in shapes and (12,) in shapes

    def test_all_pairs_same_size_and_unique(self):
        scenarios = all_pairs(16)
        assert len(scenarios) == len(set(scenarios))
        for scenario in scenarios:
            assert math.prod(scenario.guest_shape) == math.prod(scenario.host_shape)
        # Identical (kind, shape) pairs are excluded by default.
        assert all(
            (s.guest_kind, s.guest_shape) != (s.host_kind, s.host_shape)
            for s in scenarios
        )

    def test_all_pairs_reaches_survey_scale(self):
        assert len(all_pairs(48)) >= 200  # the acceptance-criteria sweep size

    def test_scenario_id_round_trip(self):
        scenario = Scenario("torus", (4, 6), "mesh", (2, 2, 2, 3))
        assert scenario.scenario_id == "torus:4,6->mesh:2,2,2,3"
        assert Scenario.from_id(scenario.scenario_id) == scenario

    def test_suites_exist_and_are_nonempty(self):
        for name in suite_names():
            assert scenarios_for_suite(name, max_nodes=24)

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError):
            scenarios_for_suite("nope")


class TestRunner:
    def test_evaluate_scenario_measures_paper_pair(self):
        record = evaluate_scenario(
            Scenario("torus", (4, 6), "mesh", (2, 2, 2, 3)), SurveyOptions()
        )
        assert record.status == "ok"
        assert record.dilation == record.predicted_dilation == 1
        assert record.matches_prediction
        assert record.nodes == 24

    def test_evaluate_scenario_flags_unsupported(self):
        record = evaluate_scenario(
            Scenario("torus", (2, 3, 5), "torus", (5, 6)), SurveyOptions()
        )
        assert record.status in ("ok", "unsupported")
        if record.status == "unsupported":
            assert record.dilation is None and record.error

    def test_run_survey_sequential_is_deterministic(self):
        scenarios = scenarios_for_suite("smoke")
        first = run_survey(scenarios, SurveyOptions(workers=1))
        second = run_survey(scenarios, SurveyOptions(workers=1))
        strip = lambda r: {**r.as_dict(), "elapsed_seconds": None}
        assert [strip(r) for r in first.records] == [strip(r) for r in second.records]
        assert [r.scenario_id for r in first.records] == [
            s.scenario_id for s in scenarios
        ]

    def test_run_survey_parallel_matches_sequential(self):
        scenarios = all_pairs(12)
        sequential = run_survey(scenarios, SurveyOptions(workers=1))
        parallel = run_survey(scenarios, SurveyOptions(workers=2, shard_size=4))
        strip = lambda r: {**r.as_dict(), "elapsed_seconds": None}
        assert [strip(r) for r in sequential.records] == [
            strip(r) for r in parallel.records
        ]
        assert not sequential.failed

    def test_run_survey_writes_and_merges_shards(self, tmp_path):
        scenarios = all_pairs(12)
        report = run_survey(
            scenarios,
            SurveyOptions(workers=2, shard_size=5, shard_dir=str(tmp_path)),
        )
        assert len(report.shard_paths) == math.ceil(len(scenarios) / 5)
        merged = merge_shards(report.shard_paths)
        assert sorted(r.scenario_id for r in merged) == sorted(
            r.scenario_id for r in report.records
        )
        # Merging a shard twice must not duplicate records.
        assert len(merge_shards(report.shard_paths + report.shard_paths[:1])) == len(
            merged
        )

    def test_summary_rows_cover_measured_strategies(self):
        report = run_survey(scenarios_for_suite("smoke"), SurveyOptions(workers=1))
        rows = report.summary_rows()
        assert sum(row["pairs"] for row in rows) == len(report.ok)

    def test_run_survey_resumes_from_finished_shards(self, tmp_path):
        scenarios = all_pairs(12)
        options = SurveyOptions(workers=1, shard_size=5, shard_dir=str(tmp_path))
        shards = [scenarios[start : start + 5] for start in range(0, len(scenarios), 5)]
        # Pre-seed shard 0 with a finished shard file whose records carry an
        # impossible sentinel dilation: if the runner recomputed the shard it
        # would overwrite the sentinel, so seeing it in the merged report
        # proves the file was reused, not rebuilt.
        sentinel = [
            SurveyRecord(
                scenario_id=s.scenario_id,
                guest=repr(s.guest_graph()),
                host=repr(s.host_graph()),
                nodes=s.guest_graph().size,
                guest_edges=s.guest_graph().num_edges(),
                status="ok",
                strategy="pre-seeded",
                dilation=999,
                average_dilation=999.0,
            )
            for s in shards[0]
        ]
        write_json(sentinel, tmp_path / "shard-0000.json")
        report = run_survey(scenarios, options)
        assert report.reused_shard_indices == [0]
        assert report.records[: len(sentinel)] == sentinel
        # The remaining shards were computed normally.
        assert all(r.strategy != "pre-seeded" for r in report.records[len(sentinel) :])
        # A full rerun over the now-complete shard_dir recomputes nothing.
        rerun = run_survey(scenarios, options)
        assert rerun.reused_shard_indices == list(range(len(shards)))
        strip = lambda r: {**r.as_dict(), "elapsed_seconds": None}
        assert [strip(r) for r in rerun.records] == [strip(r) for r in report.records]

    def test_run_survey_resume_rejects_mismatched_shards(self, tmp_path):
        scenarios = all_pairs(12)
        # A shard file from a different sweep (wrong scenario ids) is ignored.
        stranger = SurveyRecord(
            scenario_id="torus:9,9->mesh:81",
            guest="Torus((9, 9))",
            host="Mesh((81,))",
            nodes=81,
            guest_edges=162,
            status="ok",
            strategy="pre-seeded",
            dilation=999,
        )
        write_json([stranger], tmp_path / "shard-0000.json")
        report = run_survey(
            scenarios, SurveyOptions(workers=1, shard_size=5, shard_dir=str(tmp_path))
        )
        assert report.reused_shard_indices == []
        assert all(r.strategy != "pre-seeded" for r in report.records)

    def test_run_survey_resume_rejects_option_mismatch(self, tmp_path):
        # A shard written without congestion must not satisfy a rerun that
        # requests it (the reused records would carry congestion=None).
        scenarios = all_pairs(12)[:5]
        run_survey(
            scenarios, SurveyOptions(workers=1, shard_size=5, shard_dir=str(tmp_path))
        )
        with_congestion = run_survey(
            scenarios,
            SurveyOptions(
                workers=1, shard_size=5, shard_dir=str(tmp_path), with_congestion=True
            ),
        )
        assert with_congestion.reused_shard_indices == []
        assert all(r.congestion is not None for r in with_congestion.ok)
        # ... and the congestion-bearing shard now on disk is reusable.
        again = run_survey(
            scenarios,
            SurveyOptions(
                workers=1, shard_size=5, shard_dir=str(tmp_path), with_congestion=True
            ),
        )
        assert again.reused_shard_indices == [0]

    def test_run_survey_resume_can_be_disabled(self, tmp_path):
        scenarios = all_pairs(12)[:5]
        options = SurveyOptions(workers=1, shard_size=5, shard_dir=str(tmp_path))
        run_survey(scenarios, options)
        fresh = run_survey(
            scenarios,
            SurveyOptions(
                workers=1, shard_size=5, shard_dir=str(tmp_path), resume=False
            ),
        )
        assert fresh.reused_shard_indices == []


class TestStore:
    def _records(self):
        report = run_survey(scenarios_for_suite("smoke"), SurveyOptions(workers=1))
        assert report.records
        return report.records

    def test_json_round_trip(self, tmp_path):
        records = self._records()
        path = write_json(records, tmp_path / "out.json")
        assert read_json(path) == records
        payload = json.loads(path.read_text())
        assert payload["count"] == len(records)

    def test_csv_round_trip(self, tmp_path):
        records = self._records()
        path = write_csv(records, tmp_path / "out.csv")
        assert read_csv(path) == records

    def test_write_records_dispatches_on_extension(self, tmp_path):
        records = self._records()
        assert read_records(write_records(records, tmp_path / "a.csv")) == records
        assert read_records(write_records(records, tmp_path / "a.json")) == records

    def test_none_fields_survive_csv(self, tmp_path):
        record = SurveyRecord(
            scenario_id="torus:2,3->torus:6",
            guest="Torus((2, 3))",
            host="Torus((6,))",
            nodes=6,
            guest_edges=9,
            status="unsupported",
            error="no construction",
        )
        path = write_csv([record], tmp_path / "none.csv")
        assert read_csv(path) == [record]


class TestCli:
    def test_survey_smoke_writes_results_file(self, tmp_path, capsys):
        output = tmp_path / "smoke.json"
        assert main(["survey", "--smoke", "--output", str(output)]) == 0
        records = read_records(output)
        assert len(records) == len(scenarios_for_suite("smoke"))
        assert all(record.status == "ok" for record in records)
        assert "measured" in capsys.readouterr().out

    def test_survey_limit_and_csv(self, tmp_path, capsys):
        output = tmp_path / "mini.csv"
        code = main(
            [
                "survey",
                "--suite",
                "exhaustive",
                "--max-nodes",
                "12",
                "--workers",
                "1",
                "--limit",
                "10",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert len(read_records(output)) == 10
