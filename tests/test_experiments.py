"""Unit tests for the experiment harness (repro.experiments)."""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_all, run_experiment
from repro.experiments.registry import ExperimentResult, _ensure_loaded
from repro.experiments import __main__ as experiments_main
from repro.experiments.basic_tables import line_rows, ring_ablation_rows, ring_rows
from repro.experiments.increasing_tables import factor_ablation_rows, hypercube_rows
from repro.experiments.lowering_tables import ordering_ablation_rows, simple_rows
from repro.experiments.optima_tables import epsilon_rows, hypercube_in_line_rows
from repro.experiments.simulation_tables import mapping_rows, SCENARIOS
from repro.experiments.square_tables import square_increasing_rows, square_lowering_rows


EXPECTED_IDS = {
    "FIG-1/2",
    "FIG-3",
    "FIG-4",
    "FIG-9",
    "FIG-10",
    "FIG-11",
    "FIG-12",
    "TAB-BASIC",
    "TAB-INC",
    "TAB-LOW-SIMPLE",
    "TAB-LOW-GENERAL",
    "TAB-SQUARE-LOW",
    "TAB-SQUARE-INC",
    "TAB-OPTIMA",
    "TAB-SEARCH",
    "APP-EPS",
    "SIM-MAP",
    "WORKLOADS",
}


class TestRegistry:
    def test_every_design_md_experiment_is_registered(self):
        _ensure_loaded()
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_get_and_run_experiment(self):
        result = run_experiment("FIG-1/2")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "FIG-1/2"
        assert result.rows

    def test_run_all_subset_preserves_order(self):
        results = run_all(["FIG-3", "APP-EPS"])
        assert [r.experiment_id for r in results] == ["FIG-3", "APP-EPS"]

    def test_get_experiment_unknown_id(self):
        _ensure_loaded()
        with pytest.raises(KeyError):
            get_experiment("TAB-DOES-NOT-EXIST")


class TestRendering:
    def test_render_text_contains_table_and_notes(self):
        result = run_experiment("FIG-9")
        text = result.render()
        assert "FIG-9" in text
        assert "note:" in text
        assert "f_L" in text

    def test_render_markdown_structure(self):
        result = run_experiment("FIG-1/2")
        markdown = result.render_markdown()
        assert markdown.startswith("### FIG-1/2")
        assert "|---" in markdown

    def test_figure_experiments_carry_text_blocks(self):
        for experiment_id in ("FIG-4", "FIG-9", "FIG-10", "FIG-11", "FIG-12"):
            assert run_experiment(experiment_id).text


class TestRowGenerators:
    def test_basic_rows_match_predictions(self):
        sweep = [(3, 3), (4, 2, 3), (8,)]
        assert all(row["dilation"] == 1 for row in line_rows(sweep))
        assert all(row["dilation"] == row["paper"] for row in ring_rows(sweep))
        assert all(row["h_L dilation"] == 1 for row in ring_ablation_rows([(4, 2, 3)]))

    def test_increasing_ablation_and_hypercubes(self):
        rows = factor_ablation_rows()
        assert {row["dilation"] for row in rows} == {1, 2}
        assert all(row["dilation"] == 1 for row in hypercube_rows())

    def test_lowering_rows_respect_bounds(self):
        for row in simple_rows([((4, 2, 3, 3), (8, 9))]):
            assert row["dilation"] <= row["paper"]
        for row in ordering_ablation_rows():
            assert row["non-increasing"] <= row["non-decreasing"]

    def test_square_rows_respect_formula_and_bound(self):
        for row in square_lowering_rows([(2, 1, 4), (3, 2, 4)]):
            assert row["lower bound (Thm 47)"] <= row["dilation"] <= row["formula"]
        for row in square_increasing_rows([(1, 2, 9), (2, 3, 8)]):
            assert row["dilation"] <= row["formula"]

    def test_optima_rows(self):
        assert epsilon_rows(4)[3]["ε_m"] == "7/8"
        rows = hypercube_in_line_rows((3, 4))
        assert all(row["known optimal"] <= row["ours"] for row in rows)

    def test_simulation_rows_paper_wins(self):
        rows = mapping_rows(SCENARIOS[:1])
        by_strategy = {row["strategy"]: row for row in rows}
        assert by_strategy["paper"]["makespan"] <= by_strategy["random"]["makespan"]
        assert by_strategy["paper"]["max hops"] <= by_strategy["lexicographic"]["max hops"]


class TestMainEntryPoint:
    def test_list_option(self, capsys):
        assert experiments_main.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "FIG-9" in out and "SIM-MAP" in out

    def test_only_selection_text(self, capsys):
        assert experiments_main.main(["--only", "FIG-3"]) == 0
        out = capsys.readouterr().out
        assert "FIG-3" in out

    def test_only_selection_markdown(self, capsys):
        assert experiments_main.main(["--markdown", "--only", "APP-EPS"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("### APP-EPS")
