"""``strategy_for`` must agree with the strategy ``embed`` actually uses.

The two are computed by separate code paths in ``repro.core.dispatch``:
``strategy_for`` re-derives the decision procedure without building anything,
while ``embed`` runs the builders (with their own fallback chains).  These
tests pin them together through :func:`repro.core.dispatch.strategy_family`,
on fixed pairs for every family and on random same-size pairs.
"""

import pytest
from hypothesis import given, settings

from repro.core.dispatch import embed, strategy_family, strategy_for
from repro.exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from repro.graphs.base import Line, Mesh, Ring, Torus, make_graph

from .strategies import graph_kinds, same_size_shape_pairs


class TestStrategyFamily:
    @pytest.mark.parametrize(
        "strategy,family",
        [
            ("identity", "same-shape"),
            ("same-shape:T_L", "same-shape"),
            ("permute-dimensions", "permute-dimensions"),
            ("permute-dimensions∘T_L", "permute-dimensions"),
            ("line:f_L", "basic"),
            ("ring:h_L", "basic"),
            ("ring:π∘h_L*", "basic"),
            ("ring:g_L", "basic"),
            ("increasing:F_V", "increasing"),
            ("increasing:G_V", "increasing"),
            ("increasing:H_V", "increasing"),
            ("increasing:H_V(even-first)", "increasing"),
            ("lowering:U_V∘τ", "lowering-simple"),
            ("lowering:U_V∘T∘τ", "lowering-simple"),
            ("lowering:β∘F'_S∘α", "lowering-general"),
            ("lowering:β∘G'_S∘α", "lowering-general"),
            ("lowering:β∘G''_S∘α", "lowering-general"),
            ("square-lowering:simple-reduction", "square-lowering"),
            ("square-lowering:general-reduction-chain", "square-lowering"),
            ("square-increasing:expansion", "square-increasing"),
            ("square-increasing:expand-then-reduce", "square-increasing"),
        ],
    )
    def test_known_strategy_names_map_to_their_family(self, strategy, family):
        assert strategy_family(strategy) == family

    def test_unknown_strategies_map_to_custom(self):
        assert strategy_family("hand-rolled") == "custom"
        assert strategy_family("lexicographic") == "custom"


class TestAgreementOnFixedPairs:
    PAIRS = [
        (Mesh((3, 4)), Mesh((3, 4))),
        (Torus((4, 6)), Mesh((4, 6))),
        (Mesh((2, 3, 4)), Mesh((4, 3, 2))),
        (Torus((3, 4)), Mesh((4, 3))),
        (Line(24), Torus((4, 2, 3))),
        (Ring(24), Mesh((4, 2, 3))),
        (Torus((4, 6)), Torus((2, 2, 2, 3))),
        (Torus((3, 9)), Mesh((3, 3, 3))),
        (Mesh((4, 2, 3, 3)), Mesh((8, 9))),
        (Torus((2, 3, 5)), Ring(30)),
        (Mesh((3, 3, 4)), Mesh((6, 6))),
        (Mesh((4,) * 5), Mesh((32, 32))),
        (Mesh((8, 8)), Mesh((4, 4, 4))),
    ]

    @pytest.mark.parametrize(
        "guest,host", PAIRS, ids=[f"{g!r}->{h!r}" for g, h in PAIRS]
    )
    def test_embed_strategy_is_in_the_predicted_family(self, guest, host):
        predicted = strategy_for(guest, host)
        embedding = embed(guest, host)
        assert strategy_family(embedding.strategy) == predicted

    def test_size_mismatch_raises_in_both(self):
        with pytest.raises(ShapeMismatchError):
            strategy_for(Mesh((2, 3)), Mesh((2, 2)))
        with pytest.raises(ShapeMismatchError):
            embed(Mesh((2, 3)), Mesh((2, 2)))


@settings(max_examples=120, deadline=None)
@given(pair=same_size_shape_pairs(), guest_kind=graph_kinds, host_kind=graph_kinds)
def test_strategy_for_agrees_with_embed_on_random_pairs(pair, guest_kind, host_kind):
    """Supported pairs embed within the predicted family; unsupported pairs
    are flagged identically by both code paths."""
    guest_shape, host_shape = pair
    guest = make_graph(guest_kind, guest_shape)
    host = make_graph(host_kind, host_shape)
    predicted = strategy_for(guest, host)
    if predicted == "unsupported":
        with pytest.raises(UnsupportedEmbeddingError):
            embed(guest, host)
        return
    embedding = embed(guest, host)
    assert strategy_family(embedding.strategy) == predicted
