"""Tests for the bench-regression gate (benchmarks/check_bench_regression.py).

The gate is a standalone script (not part of the installed package), so it
is loaded straight from its file path.  Pinned here: median extraction,
the >max-slowdown firing, multi-pair positional matching, and the graceful
FAIL on malformed or missing snapshot artifacts.
"""

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.smoke

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _artifact(path: Path, medians: dict) -> Path:
    """Write a minimal pytest-benchmark JSON document."""
    document = {
        "benchmarks": [
            {"fullname": name, "stats": {"median": median}}
            for name, median in medians.items()
        ]
    }
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


class TestLoadMedians:
    def test_extracts_fullname_to_median(self, tmp_path):
        path = _artifact(tmp_path / "bench.json", {"suite::a": 0.5, "suite::b": 0.25})
        assert gate.load_medians(path) == {"suite::a": 0.5, "suite::b": 0.25}

    def test_document_without_benchmarks_is_empty(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{}", encoding="utf-8")
        assert gate.load_medians(path) == {}


class TestCheckPair:
    def test_within_floor_passes(self, tmp_path, capsys):
        baseline = _artifact(tmp_path / "base.json", {"k": 0.10})
        current = _artifact(tmp_path / "cur.json", {"k": 0.15})
        assert gate.check_pair(current, baseline, 2.0) is True
        assert "OK: 1 benchmarks" in capsys.readouterr().out

    def test_gate_fires_above_max_slowdown(self, tmp_path, capsys):
        baseline = _artifact(tmp_path / "base.json", {"k": 0.10, "steady": 1.0})
        current = _artifact(tmp_path / "cur.json", {"k": 0.25, "steady": 1.0})
        assert gate.check_pair(current, baseline, 2.0) is False
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "FAIL: 1 of 2 benchmarks" in out

    def test_exactly_at_the_floor_passes(self, tmp_path):
        baseline = _artifact(tmp_path / "base.json", {"k": 0.10})
        current = _artifact(tmp_path / "cur.json", {"k": 0.20})
        assert gate.check_pair(current, baseline, 2.0) is True

    def test_no_shared_names_fails(self, tmp_path, capsys):
        baseline = _artifact(tmp_path / "base.json", {"old": 0.1})
        current = _artifact(tmp_path / "cur.json", {"new": 0.1})
        assert gate.check_pair(current, baseline, 2.0) is False
        assert "nothing to compare" in capsys.readouterr().out

    def test_one_sided_names_are_reported_but_do_not_gate(self, tmp_path, capsys):
        baseline = _artifact(tmp_path / "base.json", {"k": 0.1, "retired": 0.1})
        current = _artifact(tmp_path / "cur.json", {"k": 0.1, "fresh": 9.9})
        assert gate.check_pair(current, baseline, 2.0) is True
        out = capsys.readouterr().out
        assert "baseline-only benchmark not in current run: retired" in out
        assert "new benchmark without a committed floor: fresh" in out


class TestMalformedSnapshots:
    def test_missing_file_fails_gracefully(self, tmp_path, capsys):
        current = _artifact(tmp_path / "cur.json", {"k": 0.1})
        assert gate.check_pair(current, tmp_path / "absent.json", 2.0) is False
        assert "FAIL: could not load benchmark medians" in capsys.readouterr().out

    def test_truncated_json_fails_gracefully(self, tmp_path, capsys):
        baseline = _artifact(tmp_path / "base.json", {"k": 0.1})
        broken = tmp_path / "cur.json"
        broken.write_text('{"benchmarks": [{"fullname', encoding="utf-8")
        assert gate.check_pair(broken, baseline, 2.0) is False
        assert "FAIL" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "document",
        [
            {"benchmarks": [{"fullname": "k"}]},            # stats missing
            {"benchmarks": [{"stats": {"median": 0.1}}]},   # fullname missing
            {"benchmarks": {"not": "a list"}},              # wrong container
        ],
    )
    def test_schema_violations_fail_gracefully(self, tmp_path, capsys, document):
        baseline = _artifact(tmp_path / "base.json", {"k": 0.1})
        broken = tmp_path / "cur.json"
        broken.write_text(json.dumps(document), encoding="utf-8")
        assert gate.check_pair(broken, baseline, 2.0) is False
        assert "FAIL" in capsys.readouterr().out


class TestMain:
    def test_multi_pair_all_passing(self, tmp_path):
        args = []
        baselines = []
        for name in ("netsim", "survey"):
            args.append(str(_artifact(tmp_path / f"cur-{name}.json", {name: 0.1})))
            baselines += [
                "--baseline",
                str(_artifact(tmp_path / f"base-{name}.json", {name: 0.1})),
            ]
        assert gate.main(args + baselines) == 0

    def test_one_regressing_pair_fails_the_run(self, tmp_path, capsys):
        good_base = _artifact(tmp_path / "base-a.json", {"a": 0.1})
        good_cur = _artifact(tmp_path / "cur-a.json", {"a": 0.1})
        bad_base = _artifact(tmp_path / "base-b.json", {"b": 0.1})
        bad_cur = _artifact(tmp_path / "cur-b.json", {"b": 0.9})
        args = [str(good_cur), str(bad_cur), "--baseline", str(good_base), "--baseline", str(bad_base)]
        assert gate.main(args) == 1
        out = capsys.readouterr().out
        assert "OK" in out and "REGRESSION" in out

    def test_mismatched_pair_counts_fail(self, tmp_path, capsys):
        current = _artifact(tmp_path / "cur.json", {"k": 0.1})
        base = _artifact(tmp_path / "base.json", {"k": 0.1})
        args = [str(current), str(current), "--baseline", str(base)]
        assert gate.main(args) == 1
        assert "pair up positionally" in capsys.readouterr().out

    def test_max_slowdown_is_configurable(self, tmp_path):
        baseline = _artifact(tmp_path / "base.json", {"k": 0.10})
        current = _artifact(tmp_path / "cur.json", {"k": 0.19})
        assert gate.main([str(current), "--baseline", str(baseline)]) == 0
        assert (
            gate.main(
                [str(current), "--baseline", str(baseline), "--max-slowdown", "1.5"]
            )
            == 1
        )
