"""No-NumPy degradation for the fault/expansion/traffic axes.

With NumPy unavailable every new workload path — sub-embedding dispatch,
fault repair and degraded dilation, weighted fault-aware simulation, the
survey records for all of it — must complete on the pure-Python loop
backend, announced by exactly one RuntimeWarning for the whole session.
"""

import warnings

import pytest

from repro.analysis.fault_tolerance import fault_dilation_summary, repair_embedding
from repro.core.dispatch import embed
from repro.graphs.base import Mesh, Torus
from repro.graphs.faults import FaultSpec
from repro.netsim.network import HostNetwork
from repro.netsim.simulator import simulate_phase
from repro.netsim.traffic import neighbor_exchange_traffic, traffic_pattern
from repro.netsim.weights import LinkWeightSpec
from repro.runtime import context as context_module
from repro.runtime import use_context
from repro.survey.runner import SurveyOptions, evaluate_scenario
from repro.survey.scenarios import Scenario

pytestmark = pytest.mark.smoke


class TestNoNumpyWorkloads:
    def test_new_axes_degrade_to_loop_with_one_warning(self, monkeypatch):
        monkeypatch.setattr(context_module, "_HAVE_NUMPY", False)
        monkeypatch.setattr(context_module, "_warned_numpy_fallback", False)
        guest, host = Torus((2, 3)), Mesh((3, 4))
        with pytest.warns(RuntimeWarning, match="falls back to the pure-Python") as caught:
            with use_context(backend="auto"):
                # Expansion: the sub-embedding builds dict-backed, no arrays.
                embedding = embed(guest, host)
                assert embedding.strategy.startswith("subshape:")
                assert embedding._host_indices is None
                assert embedding.dilation() >= 1
                # Faults: repair and degraded dilation over pure-Python BFS.
                faults = FaultSpec(1, 1, 5).apply(host)
                repaired = repair_embedding(embedding, faults)
                dilation, average = fault_dilation_summary(repaired, faults)
                assert dilation >= 1 and average > 0
                # Weighted fault-aware simulation on the heap event loop.
                network = HostNetwork(
                    host, link_weights=LinkWeightSpec("dimension", 0.5)
                )
                result = simulate_phase(
                    network,
                    repaired,
                    neighbor_exchange_traffic(guest),
                    faults=faults,
                )
                assert result.makespan > 0
                # Adversarial traffic builders are pure Python already.
                assert len(traffic_pattern("hotspot", guest).messages) == guest.size - 1
        runtime_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime_warnings) == 1

    def test_survey_records_for_new_suites_without_numpy(self, monkeypatch):
        monkeypatch.setattr(context_module, "_HAVE_NUMPY", False)
        monkeypatch.setattr(context_module, "_warned_numpy_fallback", True)
        options = SurveyOptions(workers=1)
        expansion = evaluate_scenario(Scenario("torus", (2, 3), "mesh", (3, 4)), options)
        assert expansion.status == "ok"
        assert expansion.guest_size == 6 and expansion.nodes == 12
        fault = evaluate_scenario(
            Scenario("torus", (2, 3), "mesh", (3, 4), faults="n1l1s5"), options
        )
        assert fault.status == "ok"
        assert fault.faults == "n1l1s5"
        assert fault.dilation >= 1

    def test_loop_backend_request_stays_silent(self, monkeypatch):
        monkeypatch.setattr(context_module, "_HAVE_NUMPY", False)
        monkeypatch.setattr(context_module, "_warned_numpy_fallback", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with use_context(backend="loop"):
                embedding = embed(Mesh((8,)), Mesh((3, 4)))
                assert embedding.strategy.startswith("subshape:")
