"""Unit tests for simple and general reduction (Definitions 37 and 41)."""

import pytest

from repro.core.reduction import (
    GeneralReductionFactor,
    SimpleReductionFactor,
    find_general_reduction,
    find_simple_reduction,
    is_general_reduction,
    is_simple_reduction,
    iter_general_reductions,
    require_reduction,
)
from repro.exceptions import NoReductionError


class TestSimpleReductionFactor:
    def test_host_shape_and_flatten(self):
        factor = SimpleReductionFactor(((4, 2), (3, 3)))
        assert factor.host_shape == (8, 9)
        assert factor.flattened == (4, 2, 3, 3)

    def test_sorting(self):
        factor = SimpleReductionFactor(((2, 4), (3, 3)))
        assert factor.sorted_non_increasing().groups == ((4, 2), (3, 3))
        assert factor.sorted_non_decreasing().groups == ((2, 4), (3, 3))

    def test_dilation_depends_on_ordering(self):
        # Theorem 39's dilation is m_i / (first component); sorting non-increasingly
        # minimizes it — the ablation the benchmarks report.
        good = SimpleReductionFactor(((4, 2),)).dilation()
        bad = SimpleReductionFactor(((2, 4),)).dilation()
        assert good == 2 and bad == 4

    def test_reduces(self):
        factor = SimpleReductionFactor(((4, 2), (3, 3)))
        assert factor.reduces((4, 2, 3, 3), (8, 9))
        assert factor.reduces((3, 4, 3, 2), (8, 9))
        assert not factor.reduces((4, 2, 3, 3), (9, 8))


class TestSimpleReductionSearch:
    def test_basic(self):
        factor = find_simple_reduction((4, 2, 3, 3), (8, 9))
        assert factor is not None
        assert factor.reduces((4, 2, 3, 3), (8, 9))
        # Components are sorted in non-increasing order (Theorem 39's convention).
        for group in factor.groups:
            assert list(group) == sorted(group, reverse=True)

    def test_figure12_shapes_are_also_simple(self):
        # (6, 9) is a simple reduction of (3, 3, 6): 6 = 6 and 9 = 3·3.
        assert is_simple_reduction((3, 3, 6), (6, 9))

    def test_hypercube_source(self):
        # By Theorem 33 + Definition 37 a hypercube reduces simply to anything of its size.
        assert is_simple_reduction((2,) * 6, (8, 8))
        assert is_simple_reduction((2,) * 6, (4, 4, 4))
        assert is_simple_reduction((2,) * 6, (64,))

    def test_not_simple(self):
        assert is_simple_reduction((2, 3, 5), (10, 3))  # 10 = 2·5 and 3 alone
        assert not is_simple_reduction((3, 3, 4), (6, 6))  # needs the general construction
        assert not is_simple_reduction((3, 3, 6), (9, 7))
        assert not is_simple_reduction((3, 3), (3, 3))  # must lower the dimension

    def test_none_when_impossible(self):
        assert find_simple_reduction((2, 3, 5), (6, 7)) is None


class TestGeneralReductionFactor:
    def test_paper_example(self):
        # Definition 41's example: M = (4,3,5,28,10,18) is a general reduction of
        # L = (2,3,2,10,6,21,5,4) with L' = (2,2,6,4,3,5), L'' = (10,21),
        # S1 = (5,2), S2 = (3,7).
        factor = GeneralReductionFactor(
            multiplicant=(2, 2, 6, 4, 3, 5),
            multiplier=(10, 21),
            s_groups=((5, 2), (3, 7)),
        )
        assert factor.b == 4
        assert factor.host_arrangement == (10, 4, 18, 28, 3, 5)
        assert factor.reduces((2, 3, 2, 10, 6, 21, 5, 4), (4, 3, 5, 28, 10, 18))

    def test_dilation(self):
        factor = GeneralReductionFactor(
            multiplicant=(3, 3), multiplier=(6,), s_groups=((3, 2),)
        )
        assert factor.dilation() == 3

    def test_reduces_rejects_bad_b(self):
        # b must satisfy d - c < b <= c.
        factor = GeneralReductionFactor(
            multiplicant=(3, 3), multiplier=(6,), s_groups=((6,),)
        )
        assert not factor.reduces((3, 3, 6), (18, 3))


class TestGeneralReductionSearch:
    def test_figure12_example(self):
        # The (3,3,6)-mesh viewed as a (3,3)-mesh of 6-node lines inside a (6,9)-mesh.
        factor = find_general_reduction((3, 3, 6), (6, 9))
        assert factor is not None
        assert factor.reduces((3, 3, 6), (6, 9))
        assert factor.dilation() == 3

    def test_paper_example_shapes(self):
        factor = find_general_reduction((2, 3, 2, 10, 6, 21, 5, 4), (4, 3, 5, 28, 10, 18))
        assert factor is not None
        assert factor.reduces((2, 3, 2, 10, 6, 21, 5, 4), (4, 3, 5, 28, 10, 18))

    def test_dimension_constraint(self):
        # General reduction requires c < d < 2c.
        assert find_general_reduction((2, 2, 2, 2), (4, 4)) is None  # d = 2c
        assert find_general_reduction((4, 4), (4, 4)) is None

    def test_is_general_reduction(self):
        assert is_general_reduction((3, 3, 6), (6, 9))
        assert not is_general_reduction((3, 3, 5), (5, 9))

    def test_iter_limit(self):
        factors = list(iter_general_reductions((3, 3, 6), (6, 9), limit=3))
        assert 1 <= len(factors) <= 3
        for factor in factors:
            assert factor.reduces((3, 3, 6), (6, 9))


class TestRequireReduction:
    def test_prefers_simple(self):
        factor = require_reduction((4, 2, 3, 3), (8, 9))
        assert isinstance(factor, SimpleReductionFactor)

    def test_falls_back_to_general(self):
        # (6, 6) is not a simple reduction of (3, 3, 4) (no subset multiplies to 6
        # alongside a complementary subset that also multiplies to 6), but it is a
        # general reduction with L' = (3, 3), L'' = (4), S_1 = (2, 2).
        factor = require_reduction((3, 3, 4), (6, 6))
        assert isinstance(factor, GeneralReductionFactor)
        assert factor.reduces((3, 3, 4), (6, 6))
        assert factor.dilation() == 2

    def test_raises_when_neither(self):
        # No subset of {4, 9, 5} multiplies to 6 and no factorization of a single
        # length can produce (6, 30) either.
        with pytest.raises(NoReductionError):
            require_reduction((4, 9, 5), (6, 30))
