"""Unit tests for list and permutation operations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.listops import (
    apply_permutation,
    compose_permutations,
    concat,
    find_permutation,
    identity_permutation,
    invert_permutation,
    is_permutation_of,
    product,
)


class TestConcat:
    def test_concat_two_lists(self):
        assert concat((1, 2), (3,)) == (1, 2, 3)

    def test_concat_empty(self):
        assert concat((), ()) == ()

    def test_concat_many(self):
        assert concat((1,), (2,), (3, 4)) == (1, 2, 3, 4)

    def test_concat_preserves_order(self):
        assert concat("ab", "cd") == ("a", "b", "c", "d")


class TestProduct:
    def test_product_basic(self):
        assert product((4, 2, 3)) == 24

    def test_product_empty_is_one(self):
        assert product(()) == 1

    def test_product_single(self):
        assert product((7,)) == 7


class TestApplyPermutation:
    def test_identity(self):
        assert apply_permutation((0, 1, 2), ("a", "b", "c")) == ("a", "b", "c")

    def test_reverse(self):
        assert apply_permutation((2, 1, 0), ("a", "b", "c")) == ("c", "b", "a")

    def test_paper_convention(self):
        # result[j] = values[perm[j]]
        assert apply_permutation((1, 2, 0), (10, 20, 30)) == (20, 30, 10)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            apply_permutation((0, 1), (1, 2, 3))

    def test_invalid_permutation_raises(self):
        with pytest.raises(ValueError):
            apply_permutation((0, 0, 1), (1, 2, 3))


class TestInvertPermutation:
    def test_invert_roundtrip(self):
        perm = (2, 0, 1)
        values = ("x", "y", "z")
        assert apply_permutation(invert_permutation(perm), apply_permutation(perm, values)) == values

    def test_invert_identity(self):
        assert invert_permutation((0, 1, 2, 3)) == (0, 1, 2, 3)

    @given(st.permutations(list(range(6))))
    def test_invert_is_involution(self, perm):
        perm = tuple(perm)
        assert invert_permutation(invert_permutation(perm)) == perm


class TestComposePermutations:
    def test_compose_matches_sequential_application(self):
        outer, inner = (1, 2, 0), (2, 0, 1)
        values = ("a", "b", "c")
        composed = compose_permutations(outer, inner)
        assert apply_permutation(composed, values) == apply_permutation(
            outer, apply_permutation(inner, values)
        )

    @given(st.permutations(list(range(5))), st.permutations(list(range(5))))
    def test_compose_property(self, outer, inner):
        outer, inner = tuple(outer), tuple(inner)
        values = tuple(range(100, 105))
        assert apply_permutation(compose_permutations(outer, inner), values) == apply_permutation(
            outer, apply_permutation(inner, values)
        )

    def test_identity_permutation(self):
        assert identity_permutation(4) == (0, 1, 2, 3)


class TestFindPermutation:
    def test_finds_valid_permutation(self):
        source, target = (6, 8, 80), (80, 6, 8)
        perm = find_permutation(source, target)
        assert perm is not None
        assert apply_permutation(perm, source) == target

    def test_with_repeated_values(self):
        source, target = (2, 2, 3), (3, 2, 2)
        perm = find_permutation(source, target)
        assert apply_permutation(perm, source) == target

    def test_none_when_not_permutation(self):
        assert find_permutation((1, 2), (2, 3)) is None

    def test_none_when_lengths_differ(self):
        assert find_permutation((1, 2), (1, 2, 3)) is None

    @given(st.lists(st.integers(min_value=2, max_value=9), min_size=1, max_size=6), st.randoms())
    def test_found_permutation_is_correct(self, values, rng):
        source = tuple(values)
        shuffled = list(values)
        rng.shuffle(shuffled)
        target = tuple(shuffled)
        perm = find_permutation(source, target)
        assert perm is not None
        assert apply_permutation(perm, source) == target


class TestIsPermutationOf:
    def test_true_for_multiset_equal(self):
        assert is_permutation_of((2, 3, 2), (3, 2, 2))

    def test_false_for_different_counts(self):
        assert not is_permutation_of((2, 2, 3), (2, 3, 3))

    def test_false_for_different_lengths(self):
        assert not is_permutation_of((2, 3), (2, 3, 3))

    def test_empty(self):
        assert is_permutation_of((), ())
