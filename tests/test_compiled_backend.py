"""The compiled kernel tier, pinned bit-for-bit against the array backend.

Four layers of coverage, mirroring the differential discipline of the
array/loop split:

* **Kernel differentials** (hypothesis): each of the five shared kernel
  sources — drain, expand_fill, accumulate, score_rows, apply_moves — is run
  against its array-path reference on randomized small inputs.  The
  *interpreted* sources run in every environment (no toolchain needed); the
  loaded tier (numba or cffi) is exercised additionally wherever one exists.
* **End-to-end equality**: optimizer searches, phase simulations and survey
  records under ``backend="compiled"`` equal the array backend's exactly.
* **Golden reproduction**: the SIM-MAP and TAB-SEARCH fixtures are re-derived
  under ``backend="compiled"`` and must match byte for byte.
* **Degradation**: with the toolchain flags monkeypatched off,
  ``backend="compiled"`` falls back to the array backend with exactly one
  RuntimeWarning per process and byte-identical results; backend validation
  raises ``ValueError`` naming the allowed set.
"""

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    stacked_dilation_summary,
    stacked_objective_components,
)
from repro.compiled import dispatch, toolchain
from repro.compiled.dispatch import interpreted_kernels, load_kernels
from repro.graphs.base import Mesh, Torus
from repro.netsim.kernels import LinkIndexSpace, accumulate_link_loads, expand_routes
from repro.netsim.network import HostNetwork
from repro.netsim.simulator import simulate_phase, simulate_phases
from repro.netsim.traffic import neighbor_exchange_traffic, transpose_traffic
from repro.numbering.arrays import (
    indices_to_digits,
    signed_offset_digits,
    stacked_edge_congestion,
)
from repro.optimize.search import OptimizeOptions, _ArrayEngine, optimize_embedding
from repro.runtime import ConstructionCache, ExecutionContext, use_context
from repro.runtime import context as context_module

np = pytest.importorskip("numpy")

HAVE_TOOLCHAIN = toolchain.compiled_tier_available()

needs_toolchain = pytest.mark.skipif(
    not HAVE_TOOLCHAIN, reason="no kernel toolchain (numba or cffi + C compiler)"
)


def kernel_sets():
    """The kernel sets to differential-test in this environment."""
    sets = [interpreted_kernels()]
    loaded = load_kernels()
    if loaded is not None:
        sets.append(loaded)
    return sets


def graph_for(torus, shape):
    return Torus(shape) if torus else Mesh(shape)


SHAPES = [(4,), (2, 2), (4, 5), (3, 4), (2, 3, 3), (2, 2, 2, 2)]


# --------------------------------------------------------------------------- #
# Kernel differentials (hypothesis)
# --------------------------------------------------------------------------- #
class TestKernelDifferentials:
    @settings(max_examples=20, deadline=None)
    @given(
        shape_index=st.integers(0, len(SHAPES) - 1),
        torus=st.booleans(),
        batch=st.integers(1, 5),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_score_rows_matches_stacked_metrics(self, shape_index, torus, batch, seed):
        host = graph_for(torus, SHAPES[shape_index])
        guest = Mesh((host.size,))
        edge_u, edge_v = guest.edge_index_arrays()
        rng = np.random.default_rng(seed)
        images = np.stack(
            [rng.permutation(host.size) for _ in range(batch)]
        ).astype(np.int64)
        want = stacked_objective_components(
            host, edge_u, edge_v, images, with_congestion=True
        )
        want_congestion = stacked_edge_congestion(
            images, edge_u, edge_v, host.shape, torus=host.is_torus
        )
        want_summary = stacked_dilation_summary(host, edge_u, edge_v, images)
        for kernels in kernel_sets():
            dil_max, dil_sum, congestion = kernels.score_rows(
                images, edge_u, edge_v, host.shape, host.is_torus, with_congestion=True
            )
            assert np.array_equal(dil_max, want[0]), kernels.tier
            assert np.array_equal(dil_sum, want[1]), kernels.tier
            assert np.array_equal(congestion, want[2]), kernels.tier
            assert np.array_equal(congestion, want_congestion), kernels.tier
            # The exact integer sum divided by the edge count reproduces the
            # NumPy pairwise float mean bit for bit (small-integer sums).
            mean = dil_sum / float(edge_u.size)
            assert np.array_equal(mean, want_summary[1]), kernels.tier

    @settings(max_examples=20, deadline=None)
    @given(
        shape_index=st.integers(0, len(SHAPES) - 1),
        torus=st.booleans(),
        messages=st.integers(1, 40),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_expand_and_accumulate_match_array_kernels(
        self, shape_index, torus, messages, seed
    ):
        topology = graph_for(torus, SHAPES[shape_index])
        space = LinkIndexSpace(topology)
        rng = np.random.default_rng(seed)
        src = indices_to_digits(rng.integers(0, topology.size, messages), space.shape)
        dst = indices_to_digits(rng.integers(0, topology.size, messages), space.shape)
        routes = expand_routes(space, src, dst)
        offsets = signed_offset_digits(
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            space.shape,
            torus=space.is_torus,
        )
        sizes = rng.uniform(1.0, 64.0, messages)
        occupancy = rng.uniform(0.25, 4.0, messages)
        hop_occupancy = rng.uniform(0.25, 4.0, routes.total_hops)
        want_hom = accumulate_link_loads(space, routes, sizes, occupancy)
        want_het = accumulate_link_loads(
            space, routes, sizes, occupancy, hop_occupancy=hop_occupancy
        )
        for kernels in kernel_sets():
            link_ids = kernels.expand_link_ids(
                src, offsets, routes.starts, space.shape, space.num_nodes, space.is_torus
            )
            assert np.array_equal(link_ids, routes.link_ids), kernels.tier
            for want, hops in ((want_hom, None), (want_het, hop_occupancy)):
                got = kernels.link_loads(
                    space.num_slots,
                    routes.starts,
                    routes.link_ids,
                    sizes,
                    occupancy,
                    hop_occupancy=hops,
                )
                assert np.array_equal(got[0], want[0]), kernels.tier
                assert np.array_equal(got[1], want[1]), kernels.tier
                assert np.array_equal(got[2], want[2]), kernels.tier

    @settings(max_examples=15, deadline=None)
    @given(
        shape_index=st.integers(0, len(SHAPES) - 1),
        torus=st.booleans(),
        messages=st.integers(1, 30),
        heterogeneous=st.booleans(),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_drain_matches_rounds_loop(
        self, shape_index, torus, messages, heterogeneous, seed
    ):
        from repro.netsim.simulator import simulate_phases_rounds

        topology = graph_for(torus, SHAPES[shape_index])
        space = LinkIndexSpace(topology)
        rng = np.random.default_rng(seed)
        src = indices_to_digits(rng.integers(0, topology.size, messages), space.shape)
        dst = indices_to_digits(rng.integers(0, topology.size, messages), space.shape)
        routes = expand_routes(space, src, dst)
        occupancy = rng.uniform(0.5, 2.0, messages)
        if heterogeneous:
            phase = (space, routes, occupancy, rng.uniform(0.5, 2.0, routes.total_hops))
        else:
            phase = (space, routes, occupancy)
        with use_context(backend="array"):
            want = simulate_phases_rounds([phase, phase])
        for kernels in kernel_sets():
            got = _drive_rounds_through(kernels, [phase, phase])
            assert got == want, kernels.tier

    @settings(max_examples=20, deadline=None)
    @given(
        width=st.integers(2, 16),
        members=st.integers(1, 8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_apply_moves_matches_array_engine(self, width, members, seed):
        rng = np.random.default_rng(seed)
        matrix = np.stack(
            [rng.permutation(width) for _ in range(members)]
        ).astype(np.int64)
        moves = []
        for _ in range(members):
            lo, hi = sorted(rng.choice(width, size=2, replace=False).tolist())
            moves.append((int(rng.integers(0, 2)), int(lo), int(hi)))
        engine = _ArrayEngine.__new__(_ArrayEngine)
        engine.np = np
        want = _ArrayEngine.candidates(engine, matrix, moves)
        pristine = matrix.copy()
        for kernels in kernel_sets():
            got = kernels.apply_moves(matrix, moves)
            assert np.array_equal(got, want), kernels.tier
            assert np.array_equal(matrix, pristine), kernels.tier  # input untouched


def _drive_rounds_through(kernels, phases):
    """Run ``simulate_phases_rounds`` with ``kernels`` forced as the tier."""
    import repro.netsim.simulator as simulator_module
    from repro.netsim.simulator import simulate_phases_rounds

    original = simulator_module.active_kernels
    simulator_module.active_kernels = lambda: kernels
    try:
        return simulate_phases_rounds(phases)
    finally:
        simulator_module.active_kernels = original


# --------------------------------------------------------------------------- #
# End-to-end equality under backend="compiled"
# --------------------------------------------------------------------------- #
@needs_toolchain
class TestCompiledBackendEndToEnd:
    def test_optimizer_search_is_identical(self):
        guest, host = Mesh((4, 4)), Torus((4, 4))
        options = OptimizeOptions(budget=300, population=6, seed=5)
        with use_context(backend="array"):
            want = optimize_embedding(guest, host, options)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with use_context(backend="compiled"):
                got = optimize_embedding(guest, host, options)
        assert got.objective == want.objective
        assert got.evaluations == want.evaluations
        assert tuple(got.state.host_indices) == tuple(want.state.host_indices)
        assert (got.dilation, got.dilation_total, got.congestion) == (
            want.dilation,
            want.dilation_total,
            want.congestion,
        )

    def test_simulated_phases_are_identical(self):
        from repro.api import embed

        guest, host = Mesh((4, 4)), Torus((4, 4))
        network = HostNetwork(host)
        inputs = [
            (network, embed(guest, host), neighbor_exchange_traffic(guest)),
            (network, embed(guest, host), transpose_traffic(guest)),
        ]
        with use_context(backend="array"):
            want = [result.as_row() for result in simulate_phases(inputs)]
        with use_context(backend="compiled"):
            got = [result.as_row() for result in simulate_phases(inputs)]
        assert got == want

    def test_survey_records_are_identical(self):
        from repro.survey import SurveyOptions, run_survey, scenarios_for_suite

        scenarios = scenarios_for_suite("smoke")
        options = SurveyOptions(workers=1, with_congestion=True, resume=False)

        def rows(backend):
            with use_context(backend=backend):
                report = run_survey(scenarios, options)
            stripped = []
            for record in report.records:
                row = record.as_dict()
                row.pop("elapsed_seconds")
                stripped.append(row)
            return json.dumps(stripped, sort_keys=True)

        assert rows("compiled") == rows("array")


# --------------------------------------------------------------------------- #
# Golden reproduction under backend="compiled"
# --------------------------------------------------------------------------- #
@needs_toolchain
class TestGoldenTablesUnderCompiled:
    def _assert_matches(self, name, generate):
        from tests.test_golden_tables import load_fixture

        fixture = load_fixture(name)
        with use_context(backend="compiled"):
            recomputed = json.loads(json.dumps(generate()))
        assert len(recomputed) == fixture["count"]
        for index, (got, want) in enumerate(zip(recomputed, fixture["rows"])):
            assert got == want, f"{name} row {index} drifted under compiled: {got!r}"

    def test_sim_map_rows_reproduce_golden(self):
        from tests.test_golden_tables import _sim_map_rows

        self._assert_matches("tab_sim_map", _sim_map_rows)

    def test_search_rows_reproduce_golden(self):
        from repro.experiments.optima_tables import search_rows

        self._assert_matches("tab_optima", search_rows)


# --------------------------------------------------------------------------- #
# Warm-cache interop: array <-> compiled share one cache
# --------------------------------------------------------------------------- #
@needs_toolchain
class TestWarmCacheInterop:
    GUEST, HOST = Mesh((3, 3)), Torus((3, 3))
    OPTIONS = OptimizeOptions(budget=200, population=5, seed=3)

    def _optimize(self, backend, cache):
        with use_context(backend=backend):
            return optimize_embedding(self.GUEST, self.HOST, self.OPTIONS, cache=cache)

    def test_cache_written_under_array_warm_starts_compiled(self, tmp_path):
        cache = ConstructionCache()
        cold = self._optimize("array", cache)
        path = cache.save(tmp_path / "cache.json")
        warmed = ConstructionCache.load(path)
        warm = self._optimize("compiled", warmed)
        # The stored optimum joins the seed population, so the warm search
        # can only match or improve — and the state matches the array run's.
        assert warm.objective <= cold.objective
        state = warmed.fetch_optimum(self.OPTIONS.objective, self.GUEST, self.HOST)
        assert state is not None
        assert tuple(state.host_indices) == tuple(warm.state.host_indices)

    def test_cache_written_under_compiled_warm_starts_array(self, tmp_path):
        cache = ConstructionCache()
        cold = self._optimize("compiled", cache)
        path = cache.save(tmp_path / "cache.json")
        warmed = ConstructionCache.load(path)
        warm = self._optimize("array", warmed)
        assert warm.objective <= cold.objective
        state = warmed.fetch_optimum(self.OPTIONS.objective, self.GUEST, self.HOST)
        assert state is not None
        assert tuple(state.host_indices) == tuple(warm.state.host_indices)

    def test_cache_payloads_are_backend_agnostic(self):
        cache_array = ConstructionCache()
        cache_compiled = ConstructionCache()
        array_result = self._optimize("array", cache_array)
        compiled_result = self._optimize("compiled", cache_compiled)
        assert array_result.objective == compiled_result.objective
        state_a = cache_array.fetch_optimum(
            self.OPTIONS.objective, self.GUEST, self.HOST
        )
        state_c = cache_compiled.fetch_optimum(
            self.OPTIONS.objective, self.GUEST, self.HOST
        )
        assert state_a is not None and state_c is not None
        assert tuple(state_a.host_indices) == tuple(state_c.host_indices)
        assert state_a.objective == state_c.objective


# --------------------------------------------------------------------------- #
# Degradation and validation
# --------------------------------------------------------------------------- #
class TestDegradationWithoutToolchain:
    pytestmark = pytest.mark.smoke

    def _strip_toolchain(self, monkeypatch):
        monkeypatch.setattr(toolchain, "_HAVE_NUMBA", False)
        monkeypatch.setattr(toolchain, "_HAVE_CFFI", False)
        monkeypatch.setattr(context_module, "_warned_compiled_fallback", False)

    def test_compiled_request_degrades_with_exactly_one_warning(self, monkeypatch):
        guest, host = Mesh((3, 4)), Torus((3, 4))
        network = HostNetwork(host)
        traffic = neighbor_exchange_traffic(guest)
        from repro.api import embed

        embedding = embed(guest, host)
        with use_context(backend="array"):
            want_sim = simulate_phase(network, embedding, traffic).as_row()
            want_opt = optimize_embedding(
                guest, host, OptimizeOptions(budget=150, population=4, seed=2)
            )
        self._strip_toolchain(monkeypatch)
        with pytest.warns(RuntimeWarning, match="no kernel toolchain") as caught:
            with use_context(backend="compiled"):
                assert context_module.current().resolved_backend() == "array"
                got_sim = simulate_phase(network, embedding, traffic).as_row()
                got_opt = optimize_embedding(
                    guest, host, OptimizeOptions(budget=150, population=4, seed=2)
                )
        runtime_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime_warnings) == 1  # once per process, however many calls
        assert got_sim == want_sim
        assert got_opt.objective == want_opt.objective
        assert tuple(got_opt.state.host_indices) == tuple(want_opt.state.host_indices)

    def test_no_second_warning_after_first_fallback(self, monkeypatch):
        self._strip_toolchain(monkeypatch)
        with pytest.warns(RuntimeWarning, match="no kernel toolchain"):
            with use_context(backend="compiled"):
                context_module.current().resolved_backend()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with use_context(backend="compiled"):
                assert context_module.current().resolved_backend() == "array"

    def test_interpreted_tier_drives_hooks_without_toolchain(self, monkeypatch):
        # Even with no toolchain, the full compiled code path (context
        # resolution -> hook sites -> KernelSet) can be driven by forcing the
        # interpreted sources in as the loaded tier.
        guest, host = Mesh((3, 3)), Torus((3, 3))
        network = HostNetwork(host)
        traffic = neighbor_exchange_traffic(guest)
        from repro.api import embed

        embedding = embed(guest, host)
        with use_context(backend="array"):
            want = simulate_phase(network, embedding, traffic).as_row()
        monkeypatch.setattr(toolchain, "_HAVE_NUMBA", False)
        monkeypatch.setattr(toolchain, "_HAVE_CFFI", True)
        monkeypatch.setattr(dispatch, "load_kernels", interpreted_kernels)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with use_context(backend="compiled"):
                assert context_module.current().resolved_backend() == "compiled"
                got = simulate_phase(network, embedding, traffic).as_row()
        assert got == want


class TestBackendValidation:
    pytestmark = pytest.mark.smoke

    def test_execution_context_rejects_unknown_backend(self):
        with pytest.raises(ValueError) as excinfo:
            ExecutionContext(backend="vectorized")
        message = str(excinfo.value)
        for allowed in ("auto", "array", "loop", "compiled"):
            assert allowed in message

    def test_use_context_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="compiled"):
            with use_context(backend="jit"):
                pass  # pragma: no cover - never reached

    def test_resolved_backend_rejects_unknown_override(self):
        with pytest.raises(ValueError, match="'auto', 'array', 'loop', 'compiled'"):
            context_module.current().resolved_backend("numba")

    def test_cli_method_accepts_compiled_and_rejects_unknown(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "embed",
                    "--guest",
                    "mesh:2,2",
                    "--host",
                    "torus:2,2",
                    "--method",
                    "compiled",
                ]
            )
            == 0
        )
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "embed",
                    "--guest",
                    "mesh:2,2",
                    "--host",
                    "torus:2,2",
                    "--method",
                    "jit",
                ]
            )
        assert excinfo.value.code == 2
        stderr = capsys.readouterr().err
        for allowed in ("auto", "array", "loop", "compiled"):
            assert allowed in stderr
