"""Unit tests for the δm and δt distance measures (Lemmas 5 and 6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.numbering.distance import chebyshev_mesh_distance, mesh_distance, torus_distance
from repro.numbering.radix import RadixBase

from .conftest import small_shapes


class TestMeshDistance:
    def test_paper_example(self):
        # Figure 2: distance between (0,0,1) and (3,0,0) in the (4,2,3)-mesh is 4.
        assert mesh_distance((0, 0, 1), (3, 0, 0)) == 4

    def test_zero_for_equal(self):
        assert mesh_distance((1, 2, 3), (1, 2, 3)) == 0

    def test_symmetry(self):
        assert mesh_distance((0, 5), (3, 1)) == mesh_distance((3, 1), (0, 5))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            mesh_distance((1, 2), (1, 2, 3))


class TestTorusDistance:
    def test_paper_example(self):
        # Figure 1: distance between (0,0,1) and (3,0,0) in the (4,2,3)-torus is 2.
        assert torus_distance((0, 0, 1), (3, 0, 0), (4, 2, 3)) == 2

    def test_wraparound(self):
        assert torus_distance((0,), (5,), (6,)) == 1
        assert torus_distance((0,), (3,), (6,)) == 3

    def test_never_exceeds_mesh_distance(self):
        a, b, shape = (0, 1, 2), (3, 0, 0), (4, 2, 3)
        assert torus_distance(a, b, shape) <= mesh_distance(a, b)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            torus_distance((1, 2), (1, 2), (4, 2, 3))

    @given(small_shapes(max_dim=3, max_len=5), st.randoms())
    def test_torus_at_most_mesh_property(self, shape, rng):
        base = RadixBase(shape)
        a = base.to_digits(rng.randrange(base.size))
        b = base.to_digits(rng.randrange(base.size))
        assert torus_distance(a, b, shape) <= mesh_distance(a, b)

    @given(small_shapes(max_dim=3, max_len=5), st.randoms())
    def test_triangle_inequality(self, shape, rng):
        base = RadixBase(shape)
        a, b, c = (base.to_digits(rng.randrange(base.size)) for _ in range(3))
        assert torus_distance(a, c, shape) <= torus_distance(a, b, shape) + torus_distance(b, c, shape)
        assert mesh_distance(a, c) <= mesh_distance(a, b) + mesh_distance(b, c)


class TestChebyshev:
    def test_value(self):
        assert chebyshev_mesh_distance((0, 0, 1), (3, 0, 0)) == 3

    def test_mismatch(self):
        with pytest.raises(ValueError):
            chebyshev_mesh_distance((0,), (1, 2))
