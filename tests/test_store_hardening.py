"""Torn-write and interrupt hardening tests.

Covers the bugfix half of the service PR: atomic artifact writes
(``atomic_write`` + its ``store.py``/``cache.py`` call sites), recovery from
files truncated mid-byte (a torn shard is recomputed, a torn cache pickle
warns and starts cold), the case-insensitive CSV boolean parser, and the
Ctrl-C exit path of the CLI.
"""

import pickle
import warnings

import pytest

from repro.cli import main
from repro.graphs.base import Mesh, Torus
from repro.runtime import ConstructionCache
from repro.survey import (
    SurveyOptions,
    SurveyRecord,
    all_pairs,
    read_csv,
    read_json,
    run_survey,
    write_csv,
    write_json,
)
from repro.utils import atomic_write

pytestmark = pytest.mark.smoke


def make_record(scenario_id="torus:4,6->mesh:4,6", **overrides):
    base = dict(
        scenario_id=scenario_id,
        guest="Torus(4, 6)",
        host="Mesh(4, 6)",
        nodes=24,
        guest_edges=48,
        status="ok",
        strategy="paper",
        dilation=2,
        average_dilation=1.5,
        matches_prediction=True,
    )
    base.update(overrides)
    return SurveyRecord(**base)


def truncate_mid_byte(path):
    """Chop a file roughly in half — the classic kill-mid-write artifact."""
    data = path.read_bytes()
    assert len(data) > 2
    path.write_bytes(data[: len(data) // 2])


class TestAtomicWrite:
    def test_creates_file_and_leaves_no_temp_siblings(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as handle:
            handle.write("payload")
        assert target.read_text() == "payload"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_binary_mode(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_write(target, mode="wb") as handle:
            handle.write(b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    def test_failure_preserves_previous_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("previous")
        with pytest.raises(RuntimeError, match="mid-write"):
            with atomic_write(target) as handle:
                handle.write("half a docu")
                raise RuntimeError("kill mid-write")
        assert target.read_text() == "previous"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_creates_missing_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "out.txt"
        with atomic_write(target) as handle:
            handle.write("x")
        assert target.read_text() == "x"

    def test_rejects_non_write_modes(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            with atomic_write(tmp_path / "out.txt", mode="a"):
                pass

    def test_store_writers_leave_no_temp_siblings(self, tmp_path):
        records = [make_record()]
        write_json(records, tmp_path / "r.json")
        write_csv(records, tmp_path / "r.csv")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["r.csv", "r.json"]

    def test_failed_json_write_preserves_previous_document(self, tmp_path):
        path = tmp_path / "r.json"
        good = [make_record()]
        write_json(good, path)
        # A record smuggling a non-serializable value kills json.dump midway;
        # the original document must survive the failed overwrite.
        bad = [make_record(error=object())]
        with pytest.raises(TypeError):
            write_json(bad, path)
        assert read_json(path) == good
        assert [p.name for p in tmp_path.iterdir()] == ["r.json"]


class TestBoolCells:
    @pytest.mark.parametrize(
        ("cell", "expected"),
        [("true", True), ("True", True), ("TRUE", True), (" true ", True),
         ("false", False), ("False", False), ("FALSE", False)],
    )
    def test_legacy_capitalizations_parse(self, tmp_path, cell, expected):
        path = tmp_path / "r.csv"
        write_csv([make_record()], path)
        header, row = path.read_text().splitlines()
        row = row.replace("true", cell)
        path.write_text(f"{header}\r\n{row}\r\n")
        assert read_csv(path)[0].matches_prediction is expected

    def test_unrecognized_cell_raises_instead_of_guessing(self, tmp_path):
        path = tmp_path / "r.csv"
        write_csv([make_record()], path)
        path.write_text(path.read_text().replace("true", "yes"))
        with pytest.raises(ValueError, match="unrecognized boolean cell"):
            read_csv(path)

    def test_round_trip_preserves_booleans(self, tmp_path):
        records = [
            make_record("a->b", matches_prediction=True),
            make_record("c->d", matches_prediction=False),
            make_record("e->f", matches_prediction=None),
        ]
        path = tmp_path / "r.csv"
        write_csv(records, path)
        assert [r.matches_prediction for r in read_csv(path)] == [True, False, None]


class TestTornShardRecovery:
    def test_truncated_shard_recomputed_others_reused(self, tmp_path):
        scenarios = all_pairs(12)
        options = SurveyOptions(workers=1, shard_size=5, shard_dir=str(tmp_path))
        reference = run_survey(scenarios, options)
        shard_count = len(reference.shard_paths)
        assert shard_count >= 2
        truncate_mid_byte(tmp_path / "shard-0000.json")
        resumed = run_survey(scenarios, options)
        # Exactly the torn shard was recomputed; every intact one was reused.
        assert resumed.reused_shard_indices == list(range(1, shard_count))
        strip = lambda r: {**r.as_dict(), "elapsed_seconds": None}
        assert [strip(r) for r in resumed.records] == [
            strip(r) for r in reference.records
        ]
        # The recompute healed the torn file for the next resume.
        rerun = run_survey(scenarios, options)
        assert rerun.reused_shard_indices == list(range(shard_count))


class TestTornCacheRecovery:
    def test_truncated_pickle_warns_and_starts_cold(self, tmp_path):
        path = tmp_path / "cache.pkl"
        cache = ConstructionCache()
        for extent in range(4, 40, 2):
            cache.store_family(Torus((extent, 6)), Mesh((extent, 6)), "increasing")
        cache.save(path)
        truncate_mid_byte(path)
        with pytest.warns(RuntimeWarning, match="unreadable .*starting cold"):
            cold = ConstructionCache.load(path)
        assert len(cold) == 0

    def test_wrong_payload_type_warns_and_starts_cold(self, tmp_path):
        path = tmp_path / "cache.pkl"
        path.write_bytes(pickle.dumps(["not", "a", "cache"]))
        with pytest.warns(RuntimeWarning, match="not a cache dict"):
            cold = ConstructionCache.load(path)
        assert cold.construction_count == 0

    def test_intact_save_load_round_trip_is_silent(self, tmp_path):
        path = tmp_path / "cache.pkl"
        cache = ConstructionCache()
        cache.store_family(Torus((4, 6)), Mesh((4, 6)), "increasing")
        cache.save(path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            warm = ConstructionCache.load(path)
        assert warm.fetch_family(Torus((4, 6)), Mesh((4, 6))) == ("increasing", None)
        assert [p.name for p in tmp_path.iterdir()] == ["cache.pkl"]


class TestKeyboardInterrupt:
    def test_cli_returns_130_and_says_interrupted(self, monkeypatch, capsys):
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.embed", interrupted)
        code = main(["embed", "--guest", "torus:4,6", "--host", "mesh:4,6"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err

    def test_survey_interrupt_also_exits_130(self, monkeypatch, capsys, tmp_path):
        monkeypatch.setattr(
            "repro.cli.run_survey",
            lambda *args, **kwargs: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        code = main(["survey", "--suite", "smoke", "--out", str(tmp_path / "o.json")])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err


class TestChaosTornWrite:
    """The chaos plane's torn_write fault flows through every store writer."""

    def test_injected_torn_write_preserves_previous_document(self, tmp_path):
        from repro.runtime import use_context
        from repro.runtime.chaos import InjectedFault

        target = tmp_path / "results.json"
        write_json([make_record()], target)
        before = target.read_bytes()
        with use_context(chaos="torn_write:1.0,seed=3"):
            with pytest.raises(InjectedFault, match="torn_write"):
                write_json([make_record(dilation=9)], target)
        assert target.read_bytes() == before  # the rename never happened
        assert not list(tmp_path.glob("*.tmp"))

    def test_injected_torn_write_on_cache_snapshot_keeps_old_pickle(self, tmp_path):
        from repro.runtime import use_context
        from repro.runtime.chaos import InjectedFault

        path = tmp_path / "cache.pkl"
        cache = ConstructionCache()
        cache.save(path)
        before = path.read_bytes()
        with use_context(chaos="torn_write:1.0,seed=3"):
            with pytest.raises(InjectedFault, match="torn_write"):
                cache.save(path)
        assert path.read_bytes() == before
        ConstructionCache.load(path)  # still a loadable pickle
