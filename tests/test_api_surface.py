"""The public-surface contract: ``repro.api`` is pinned, drift fails here.

The facade's export list and every entry point's *signature* are compared
against a manifest spelled out longhand in this file — adding, removing,
renaming or re-defaulting anything in ``repro.api`` is a deliberate act that
must update both sides.  This is the test the ISSUE calls the "stability
gate": downstream users program against exactly this surface.
"""

import inspect

import pytest

import repro
import repro.api as api

pytestmark = pytest.mark.smoke

#: The façade, in export order.  Frozen: editing this list is an API change.
MANIFEST = [
    "embed",
    "measure",
    "simulate",
    "run_survey",
    "optimize",
    "use_context",
    "load_cache",
]

#: entry point -> pinned ``(name, kind, default)`` parameter rows (facade-owned
#: callables only; ``run_survey``/``use_context`` are re-exports pinned by
#: identity below).  ``...`` marks a required parameter.
P = inspect.Parameter
SIGNATURES = {
    "embed": [
        ("guest", P.POSITIONAL_OR_KEYWORD, ...),
        ("host", P.POSITIONAL_OR_KEYWORD, ...),
        ("strategy", P.KEYWORD_ONLY, "paper"),
    ],
    "measure": [
        ("embedding", P.POSITIONAL_OR_KEYWORD, ...),
        ("with_congestion", P.KEYWORD_ONLY, False),
    ],
    "simulate": [
        ("guest", P.POSITIONAL_OR_KEYWORD, ...),
        ("host", P.POSITIONAL_OR_KEYWORD, ...),
        ("strategy", P.KEYWORD_ONLY, "paper"),
        ("traffic", P.KEYWORD_ONLY, "neighbor-exchange"),
        ("message_size", P.KEYWORD_ONLY, 1.0),
    ],
    "optimize": [
        ("guest", P.POSITIONAL_OR_KEYWORD, ...),
        ("host", P.POSITIONAL_OR_KEYWORD, ...),
        ("objective", P.KEYWORD_ONLY, "combined"),
        ("budget", P.KEYWORD_ONLY, 2000),
        ("population", P.KEYWORD_ONLY, 16),
        ("seed", P.KEYWORD_ONLY, 0),
        ("schedule", P.KEYWORD_ONLY, "anneal"),
        ("options", P.KEYWORD_ONLY, None),
    ],
    "load_cache": [("path", P.POSITIONAL_OR_KEYWORD, ...)],
}


class TestManifest:
    def test_all_matches_the_manifest_exactly(self):
        assert api.__all__ == MANIFEST

    def test_every_export_exists_and_is_callable(self):
        for name in MANIFEST:
            assert callable(getattr(api, name)), name

    def test_facade_signatures_are_pinned(self):
        for name, expected in SIGNATURES.items():
            signature = inspect.signature(getattr(api, name))
            got = [
                (
                    parameter.name,
                    parameter.kind,
                    ... if parameter.default is P.empty else parameter.default,
                )
                for parameter in signature.parameters.values()
            ]
            assert got == expected, f"api.{name} signature drifted: {got!r}"

    def test_reexports_are_the_canonical_objects(self):
        from repro.runtime.context import use_context
        from repro.survey.runner import run_survey

        assert api.run_survey is run_survey
        assert api.use_context is use_context

    def test_api_module_is_a_root_export(self):
        assert "api" in repro.__all__
        assert repro.api is api

    def test_every_export_has_a_docstring(self):
        for name in MANIFEST:
            assert (getattr(api, name).__doc__ or "").strip(), name


class TestFacadeBehaviour:
    def test_embed_accepts_spec_strings_and_live_graphs(self):
        from repro.graphs.base import Mesh, Torus

        from_strings = api.embed("torus:4x6", "mesh:2,2,2,3")
        from_graphs = api.embed(Torus((4, 6)), Mesh((2, 2, 2, 3)))
        assert from_strings.mapping == from_graphs.mapping
        assert from_strings.dilation() == 1

    def test_measure_reports_costs(self):
        report = api.measure(api.embed("ring:12", "mesh:3,4"), with_congestion=True)
        assert report.dilation >= 1
        assert report.congestion >= 1

    def test_simulate_runs_a_phase(self):
        result = api.simulate("torus:4,4", "mesh:2,2,2,2")
        assert result.makespan > 0

    def test_optimize_roundtrips_through_the_context_cache(self, tmp_path):
        path = tmp_path / "warm.pkl"
        with api.use_context(cache=api.load_cache(path)):
            result = api.optimize("torus:4x4", "mesh:4x4", budget=60, seed=7)
            from repro.runtime.context import current

            current().cache.save(path)
        assert result.embedding.strategy == "optimized"
        reloaded = api.load_cache(path)
        stored = reloaded.fetch_optimum(
            "combined", result.embedding.guest, result.embedding.host
        )
        assert stored == result.state

    def test_bad_spec_string_raises(self):
        with pytest.raises(Exception):
            api.embed("blob:4x4", "mesh:4,4")
