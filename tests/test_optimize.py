"""Tests for the population-based embedding optimizer (``repro.optimize``).

The load-bearing contract is the PR 2-7 differential extended to *search*:
the vectorized array engine and the pure-Python loop engine run the identical
shared RNG stream and acceptance logic, so a fixed seed must produce the
bit-for-bit identical best row, objective and persisted state on both
backends.  Everything else — objective encoding, seeding, cache keep-best,
suite integration, the registry opt-in — hangs off that equality.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import UnsupportedEmbeddingError
from repro.graphs.base import Mesh, Torus
from repro.optimize import (
    OBJECTIVES,
    SCHEDULES,
    SEED_STRATEGIES,
    SUITE_OPTIONS,
    OptimizeOptions,
    OptimizeResult,
    SplitMix64,
    decode_primary,
    encode_objective,
    needs_congestion,
    objective_scale,
    optimize_embedding,
    register_optimized_strategy,
)
from repro.runtime import ConstructionCache, OptimizerState, use_context
from repro.runtime.cache import optimum_cache_key
from repro.runtime.registry import STRATEGIES, build_strategy, strategy_names
from repro.survey.runner import SurveyOptions, run_survey
from repro.survey.scenarios import Scenario, scenarios_for_suite

pytestmark = pytest.mark.smoke

#: A small pair the loop engine searches in well under a second.
SMALL = (Torus((4, 4)), Mesh((4, 4)))
#: A pair without a paper construction, so baselines seed the search.
NO_PAPER = (Torus((3, 4)), Mesh((6, 2)))
FAST = OptimizeOptions(budget=80, population=6, seed=3)


class TestSplitMix64:
    def test_stream_is_deterministic(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        assert [a.next_u64() for _ in range(8)] == [b.next_u64() for _ in range(8)]

    def test_known_first_output(self):
        # The reference SplitMix64 vector for seed 0 (Vigna's splitmix64.c).
        assert SplitMix64(0).next_u64() == 0xE220A8397B1DCDAF

    def test_randrange_bounds_and_errors(self):
        rng = SplitMix64(7)
        assert all(0 <= rng.randrange(5) < 5 for _ in range(64))
        with pytest.raises(ValueError):
            rng.randrange(0)

    def test_random_unit_interval(self):
        rng = SplitMix64(9)
        assert all(0.0 <= rng.random() < 1.0 for _ in range(64))

    def test_shuffle_is_a_permutation(self):
        rng = SplitMix64(11)
        items = list(range(10))
        rng.shuffle(items)
        assert sorted(items) == list(range(10))
        repeat = list(range(10))
        SplitMix64(11).shuffle(repeat)
        assert repeat == items


class TestObjectiveEncoding:
    def test_scale_exceeds_any_dilation_total(self):
        guest, host = SMALL
        edges = sum(1 for _ in guest.edges())
        scale = objective_scale(edges, host.diameter())
        assert scale == edges * host.diameter() + 1
        # The worst possible dilation total never reaches the scale, so the
        # primary term and the tie-break never alias.
        assert edges * host.diameter() < scale

    @pytest.mark.parametrize(
        "objective, expected_primary",
        [("dilation", 4), ("congestion", 9), ("combined", 13)],
    )
    def test_encode_decode_roundtrip(self, objective, expected_primary):
        value = encode_objective(objective, 100, 4, 37, 9)
        assert decode_primary(value, 100) == expected_primary
        assert value % 100 == 37  # dil_sum rides along as the tie-break

    def test_needs_congestion(self):
        assert not needs_congestion("dilation")
        assert needs_congestion("congestion")
        assert needs_congestion("combined")

    def test_unknown_objective_raises(self):
        with pytest.raises(ValueError):
            encode_objective("latency", 100, 1, 1, 1)

    def test_lower_dilation_always_wins_over_tiebreak(self):
        better = encode_objective("dilation", 100, 2, 99, None)
        worse = encode_objective("dilation", 100, 3, 0, None)
        assert better < worse


class TestOptions:
    def test_defaults_validate(self):
        options = OptimizeOptions().validated()
        assert options.objective in OBJECTIVES
        assert options.schedule in SCHEDULES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"objective": "latency"},
            {"schedule": "tabu"},
            {"budget": -1},
            {"population": 0},
        ],
    )
    def test_invalid_options_raise(self, kwargs):
        with pytest.raises(ValueError):
            OptimizeOptions(**kwargs).validated()


class TestSearchBasics:
    def test_result_shape_and_validity(self):
        guest, host = SMALL
        result = optimize_embedding(guest, host, FAST)
        assert isinstance(result, OptimizeResult)
        result.embedding.validate()
        assert result.embedding.strategy == "optimized"
        assert result.embedding.dilation() == result.dilation
        assert result.objective == result.state.objective
        # 4 strategy seeds + 2 restarts = 6 members; budget 80 -> 13 steps.
        assert result.steps == FAST.budget // FAST.population
        assert result.evaluations == FAST.population * (result.steps + 1)

    def test_search_never_loses_to_its_seeds(self):
        # The best seed is in the initial population and acceptance keeps the
        # incumbent on ties, so the result can never be worse than any seed.
        guest, host = SMALL
        result = optimize_embedding(guest, host, FAST)
        assert result.objective <= result.baseline_objective
        assert result.improved == (result.objective < result.baseline_objective)

    def test_paper_seed_sets_the_baseline(self):
        guest, host = SMALL
        paper = build_strategy("paper", guest, host)
        edges = sum(1 for _ in guest.edges())
        scale = objective_scale(edges, host.diameter())
        expected = encode_objective(
            "combined",
            scale,
            paper.dilation(),
            sum(paper.edge_dilations()),
            paper.edge_congestion(),
        )
        result = optimize_embedding(guest, host, FAST)
        assert result.baseline_objective == expected

    def test_pair_without_paper_construction_still_searches(self):
        guest, host = NO_PAPER
        result = optimize_embedding(guest, host, FAST)
        result.embedding.validate()
        assert result.provenance != "paper"

    def test_unequal_sizes_rejected(self):
        with pytest.raises(UnsupportedEmbeddingError):
            optimize_embedding(Torus((4, 4)), Mesh((4, 5)))

    def test_zero_budget_returns_best_seed(self):
        guest, host = SMALL
        result = optimize_embedding(guest, host, OptimizeOptions(budget=0, seed=1))
        assert result.steps == 0
        assert result.evaluations == OptimizeOptions().population  # one scoring pass
        assert not result.improved


class TestDifferential:
    """Array vs loop: the whole search must agree bit for bit."""

    def run(self, backend, guest, host, options, cache=None):
        with use_context(backend=backend, cache=None):
            return optimize_embedding(guest, host, options, cache=cache)

    @pytest.mark.parametrize("objective", OBJECTIVES)
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_engines_agree_on_every_objective_and_schedule(self, objective, schedule):
        guest, host = SMALL
        options = OptimizeOptions(
            objective=objective, budget=60, population=5, seed=13, schedule=schedule
        )
        array = self.run("array", guest, host, options)
        loop = self.run("loop", guest, host, options)
        assert array.state == loop.state
        assert array.objective == loop.objective
        assert array.dilation == loop.dilation
        assert array.congestion == loop.congestion
        assert array.provenance == loop.provenance
        assert array.embedding.mapping == loop.embedding.mapping

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32), budget=st.integers(0, 64))
    def test_engines_agree_across_random_seeds(self, seed, budget):
        guest, host = NO_PAPER
        options = OptimizeOptions(budget=budget, population=4, seed=seed)
        array = self.run("array", guest, host, options)
        loop = self.run("loop", guest, host, options)
        assert array.state == loop.state
        assert array.embedding.mapping == loop.embedding.mapping

    def test_warm_started_runs_also_agree(self):
        guest, host = SMALL
        caches = {}
        for backend in ("array", "loop"):
            cache = ConstructionCache()
            self.run(backend, guest, host, FAST, cache=cache)
            second = self.run(
                backend, guest, host, OptimizeOptions(budget=40, seed=5), cache=cache
            )
            caches[backend] = (second.state, cache.fetch_optimum("combined", guest, host))
        assert caches["array"] == caches["loop"]


class TestGreedyMonotonicity:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=999))
    def test_greedy_never_worse_than_its_seeds(self, seed):
        guest, host = NO_PAPER
        seeded = optimize_embedding(
            guest, host, OptimizeOptions(budget=0, population=4, seed=seed)
        )
        searched = optimize_embedding(
            guest,
            host,
            OptimizeOptions(budget=120, population=4, seed=seed, schedule="greedy"),
        )
        assert searched.objective <= seeded.objective

    def test_anneal_can_accept_uphill_but_result_still_bounded(self):
        # Annealing may walk uphill mid-run; the *reported* best never does.
        guest, host = SMALL
        result = optimize_embedding(
            guest, host, OptimizeOptions(budget=200, population=4, seed=21)
        )
        assert result.objective <= result.baseline_objective


class TestCachePersistence:
    def test_optimum_key_format(self):
        guest, host = SMALL
        assert optimum_cache_key("combined", guest, host) == (
            "optimum",
            "combined",
            "torus",
            (4, 4),
            "mesh",
            (4, 4),
        )

    def test_store_fetch_roundtrip_and_counters(self):
        guest, host = SMALL
        cache = ConstructionCache()
        result = optimize_embedding(guest, host, FAST, cache=cache)
        assert cache.optimum_count == 1
        fetched = cache.fetch_optimum("combined", guest, host)
        assert fetched == result.state

    def test_keep_best_rejects_worse_states(self):
        guest, host = SMALL
        cache = ConstructionCache()
        result = optimize_embedding(guest, host, FAST, cache=cache)
        worse = OptimizerState(
            host_indices=result.state.host_indices,
            objective=result.state.objective + 1,
            objective_mode="combined",
            dilation=result.dilation,
            congestion=result.congestion,
            steps=1,
            provenance="worse",
        )
        assert not cache.store_optimum("combined", guest, host, worse)
        assert cache.fetch_optimum("combined", guest, host) == result.state
        better = OptimizerState(
            host_indices=result.state.host_indices,
            objective=result.state.objective - 1,
            objective_mode="combined",
            dilation=result.dilation,
            congestion=result.congestion,
            steps=1,
            provenance="better",
        )
        assert cache.store_optimum("combined", guest, host, better)

    def test_warm_start_seeds_from_the_stored_state(self):
        guest, host = SMALL
        cache = ConstructionCache()
        first = optimize_embedding(guest, host, FAST, cache=cache)
        # A zero-budget re-run must surface the cached state untouched.
        replay = optimize_embedding(
            guest, host, OptimizeOptions(budget=0, seed=99), cache=cache
        )
        assert replay.objective <= first.objective
        assert cache.fetch_optimum("combined", guest, host).objective <= first.objective

    def test_state_survives_pickling(self, tmp_path):
        guest, host = SMALL
        cache = ConstructionCache()
        result = optimize_embedding(guest, host, FAST, cache=cache)
        path = tmp_path / "cache.pkl"
        cache.save(path)
        reloaded = ConstructionCache.load(path)
        assert reloaded.fetch_optimum("combined", guest, host) == result.state
        assert reloaded.optimum_count == 1

    def test_materialize_optimum_builds_a_valid_embedding(self):
        guest, host = SMALL
        cache = ConstructionCache()
        result = optimize_embedding(guest, host, FAST, cache=cache)
        embedding = cache.materialize_optimum(result.state, guest, host)
        embedding.validate()
        assert embedding.strategy == "optimized"
        assert embedding.dilation() == result.dilation

    def test_states_pickle_standalone(self):
        state = OptimizerState(
            host_indices=(0, 1, 2),
            objective=5,
            objective_mode="dilation",
            dilation=1,
            congestion=None,
            steps=4,
            provenance="paper",
        )
        assert pickle.loads(pickle.dumps(state)) == state


class TestOptimaSuite:
    def test_suite_is_registered_with_fixed_pairs(self):
        scenarios = scenarios_for_suite("optima")
        assert len(scenarios) == 5
        assert all(s.strategy == "optimize" for s in scenarios)
        assert all(not s.traffic and not s.faults for s in scenarios)

    def test_scenario_ids_roundtrip(self):
        for scenario in scenarios_for_suite("optima"):
            assert Scenario.from_id(scenario.scenario_id) == scenario

    def test_survey_records_carry_the_search_columns(self):
        report = run_survey(
            scenarios_for_suite("optima")[:2],
            SurveyOptions(workers=1, with_congestion=True),
        )
        for record in report.records:
            assert record.status == "ok"
            assert record.search_objective is not None
            assert record.search_steps == SUITE_OPTIONS.budget // SUITE_OPTIONS.population
            assert record.improved in (True, False)
            assert record.predicted_dilation is None
            assert record.matches_prediction is None

    def test_suite_reuses_the_ambient_cache(self):
        cache = ConstructionCache()
        scenarios = scenarios_for_suite("optima")[:1]
        with use_context(cache=cache):
            first = run_survey(scenarios, SurveyOptions(workers=1))
        assert cache.optimum_count == 1
        with use_context(cache=cache):
            second = run_survey(scenarios, SurveyOptions(workers=1))
        assert cache.hits > 0
        assert first.records[0].search_objective >= second.records[0].search_objective


class TestRegistryIntegration:
    def test_optimized_is_not_a_default_strategy(self):
        assert "optimized" not in strategy_names()

    def test_register_opt_in_and_idempotent(self):
        try:
            register_optimized_strategy(FAST)
            assert "optimized" in strategy_names()
            register_optimized_strategy()  # second call is a no-op
            guest, host = SMALL
            embedding = build_strategy("optimized", guest, host)
            embedding.validate()
            assert embedding.strategy == "optimized"
        finally:
            STRATEGIES._entries.pop("optimized", None)

    def test_seed_strategies_never_include_optimized(self):
        # Guards against a registered "optimized" strategy recursing into
        # the optimizer through its own seed population.
        assert "optimized" not in SEED_STRATEGIES
        assert SEED_STRATEGIES == ("paper", "lexicographic", "bfs", "random")
