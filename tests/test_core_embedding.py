"""Unit tests for the Embedding class (Definition 1)."""

import pytest

from repro.core.basic import line_in_graph_embedding
from repro.core.embedding import Embedding
from repro.exceptions import InvalidEmbeddingError, ShapeMismatchError
from repro.graphs.base import Line, Mesh, Ring, Torus


class TestConstruction:
    def test_from_callable(self):
        guest = Line(6)
        host = Mesh((2, 3))
        embedding = Embedding.from_callable(
            guest, host, lambda node: host.index_node(node[0]), strategy="lex"
        )
        assert len(embedding) == 6
        assert embedding[(0,)] == (0, 0)
        assert embedding.map_index(5) == (1, 2)

    def test_identity_requires_equal_shapes(self):
        with pytest.raises(ShapeMismatchError):
            Embedding.identity(Mesh((2, 3)), Mesh((3, 2)))

    def test_identity_dilation_one(self):
        embedding = Embedding.identity(Mesh((3, 3)), Torus((3, 3)))
        assert embedding.dilation() == 1
        assert embedding.is_bijective()

    def test_from_permutation(self):
        guest = Mesh((2, 3))
        host = Mesh((3, 2))
        embedding = Embedding.from_permutation(guest, host, (1, 0))
        assert embedding[(1, 2)] == (2, 1)
        assert embedding.dilation() == 1

    def test_from_permutation_shape_check(self):
        with pytest.raises(ShapeMismatchError):
            Embedding.from_permutation(Mesh((2, 3)), Mesh((2, 3, 2)), (0, 1))

    def test_from_permutation_rejects_torus_into_mesh(self):
        with pytest.raises(InvalidEmbeddingError):
            Embedding.from_permutation(Torus((3, 4)), Mesh((4, 3)), (1, 0))


class TestValidity:
    def test_valid_embedding(self):
        embedding = line_in_graph_embedding(Mesh((2, 3)))
        embedding.validate()
        assert embedding.is_valid()

    def test_detects_non_injective(self):
        guest = Line(4)
        host = Mesh((2, 2))
        embedding = Embedding(
            guest, host, {(0,): (0, 0), (1,): (0, 0), (2,): (1, 0), (3,): (1, 1)}
        )
        assert not embedding.is_valid()
        with pytest.raises(InvalidEmbeddingError):
            embedding.validate()

    def test_detects_missing_nodes(self):
        guest = Line(4)
        host = Mesh((2, 2))
        embedding = Embedding(guest, host, {(0,): (0, 0)})
        assert not embedding.is_valid()

    def test_detects_image_outside_host(self):
        guest = Line(2)
        host = Mesh((2, 2))
        embedding = Embedding(guest, host, {(0,): (0, 0), (1,): (5, 5)})
        assert not embedding.is_valid()

    def test_detects_guest_larger_than_host(self):
        guest = Line(9)
        host = Mesh((2, 2))
        embedding = Embedding(guest, host, {(x,): (0, 0) for x in range(9)})
        with pytest.raises(ShapeMismatchError):
            embedding.validate()

    def test_detects_node_outside_guest(self):
        guest = Line(2)
        host = Mesh((2, 2))
        embedding = Embedding(guest, host, {(0,): (0, 0), (7,): (1, 1)})
        assert not embedding.is_valid()


class TestCosts:
    def test_dilation_of_lexicographic_line(self):
        guest = Line(6)
        host = Mesh((2, 3))
        lex = Embedding.from_callable(guest, host, lambda node: host.index_node(node[0]))
        # Natural order jumps from (0, 2) to (1, 0): distance 3.
        assert lex.dilation() == 3

    def test_average_dilation_at_most_max(self):
        embedding = line_in_graph_embedding(Mesh((3, 4)))
        assert embedding.average_dilation() <= embedding.dilation()

    def test_expansion_cost_is_one_for_same_size(self):
        embedding = line_in_graph_embedding(Mesh((3, 4)))
        assert embedding.expansion_cost() == 1.0

    def test_edge_congestion_unit_dilation_is_at_most_guest_degree(self):
        embedding = line_in_graph_embedding(Mesh((3, 4)))
        assert embedding.edge_congestion() >= 1

    def test_dilation_of_single_node_guest(self):
        guest = Line(2)
        host = Mesh((2,))
        embedding = Embedding.identity(Line(2), Line(2))
        assert embedding.dilation() == 1

    def test_matches_prediction_exact_and_upper_bound(self):
        embedding = line_in_graph_embedding(Mesh((3, 4)))
        assert embedding.matches_prediction()
        embedding.predicted_dilation = 5
        assert not embedding.matches_prediction()
        embedding.notes["dilation_is_upper_bound"] = True
        assert embedding.matches_prediction()

    def test_inverse_mapping(self):
        embedding = line_in_graph_embedding(Mesh((2, 3)))
        inverse = embedding.inverse_mapping()
        assert len(inverse) == 6
        for node, image in embedding.mapping.items():
            assert inverse[image] == node


class TestComposition:
    def test_compose_two_steps(self):
        ring = Ring(12)
        torus = Torus((3, 4))
        mesh = Mesh((3, 4))
        from repro.core.basic import ring_in_graph_embedding
        from repro.core.same_shape import torus_in_mesh_same_shape

        first = ring_in_graph_embedding(torus)
        second = torus_in_mesh_same_shape(torus, mesh)
        chain = first.compose(second)
        assert chain.guest.shape == (12,)
        assert chain.host is mesh
        assert chain.is_valid()
        assert chain.dilation() <= first.predicted_dilation * second.predicted_dilation

    def test_compose_requires_matching_intermediate(self):
        first = line_in_graph_embedding(Mesh((3, 4)))
        second = Embedding.identity(Mesh((4, 3)), Mesh((4, 3)))
        with pytest.raises(ShapeMismatchError):
            first.compose(second)

    def test_summary_contains_strategy(self):
        embedding = line_in_graph_embedding(Mesh((2, 3)))
        assert "line:f_L" in embedding.summary()
