"""Unit tests for dimension-ordered shortest paths."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidShapeError
from repro.graphs.base import Mesh, Torus
from repro.graphs.paths import dimension_order_path, shortest_path

from .conftest import small_shapes


class TestMeshPaths:
    def test_straight_line(self):
        mesh = Mesh((5, 5))
        path = dimension_order_path(mesh, (0, 0), (3, 0))
        assert path == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_l_shaped(self):
        mesh = Mesh((5, 5))
        path = dimension_order_path(mesh, (0, 0), (2, 2))
        assert path[0] == (0, 0) and path[-1] == (2, 2)
        assert len(path) - 1 == mesh.distance((0, 0), (2, 2))

    def test_same_node(self):
        mesh = Mesh((3, 3))
        assert dimension_order_path(mesh, (1, 1), (1, 1)) == [(1, 1)]

    def test_invalid_endpoint(self):
        with pytest.raises(InvalidShapeError):
            dimension_order_path(Mesh((3, 3)), (0, 0), (5, 5))


class TestTorusPaths:
    def test_wraparound_is_used(self):
        torus = Torus((6, 6))
        path = dimension_order_path(torus, (0, 0), (5, 0))
        assert len(path) - 1 == 1
        assert path == [(0, 0), (5, 0)]

    def test_tie_breaks_forward(self):
        torus = Torus((4, 4))
        path = dimension_order_path(torus, (0, 0), (2, 0))
        # Both directions are distance 2; the deterministic choice goes forward.
        assert path == [(0, 0), (1, 0), (2, 0)]


class TestPathProperties:
    @given(small_shapes(max_dim=3, max_len=5), st.randoms(), st.booleans())
    def test_path_length_equals_distance_and_steps_are_edges(self, shape, rng, use_torus):
        graph = Torus(shape) if use_torus else Mesh(shape)
        a = graph.index_node(rng.randrange(graph.size))
        b = graph.index_node(rng.randrange(graph.size))
        path = shortest_path(graph, a, b)
        assert path[0] == a and path[-1] == b
        assert len(path) - 1 == graph.distance(a, b)
        for u, v in zip(path, path[1:]):
            assert graph.distance(u, v) == 1

    def test_path_visits_distinct_nodes(self):
        mesh = Mesh((4, 4, 4))
        path = shortest_path(mesh, (0, 0, 0), (3, 3, 3))
        assert len(path) == len(set(path))
