"""Tests for the adversarial traffic generators and their vectorized twins.

Every named pattern has two forms — the tuple builder (loop reference) and
the rank generator feeding batched survey shards — which must agree message
for message.  The workload-specific shapes (permutation injectivity, the
hotspot sink, seeded burst fan-in) are pinned here too, along with the
array-vs-loop phase simulation for each new pattern.
"""

import pytest
from hypothesis import given, settings

from repro.core.dispatch import embed
from repro.exceptions import SimulationError
from repro.graphs.base import Mesh, Torus
from repro.netsim.network import HostNetwork
from repro.netsim.simulator import simulate_phase
from repro.netsim.traffic import (
    bursty_traffic,
    hotspot_traffic,
    random_permutation_traffic,
    traffic_pattern,
    traffic_pattern_names,
    traffic_rank_arrays,
)
from repro.runtime import use_context
from repro.types import GraphKind

from .conftest import graph_kinds, small_shapes

pytestmark = pytest.mark.smoke

np = pytest.importorskip("numpy")

NEW_PATTERNS = ("random-permutation", "hotspot", "bursty")


def _graph(kind, shape):
    return Torus(shape) if kind == GraphKind.TORUS else Mesh(shape)


class TestRankGeneratorEquivalence:
    @pytest.mark.parametrize("name", sorted(traffic_pattern_names()))
    @pytest.mark.parametrize("shape", [(3, 4), (2, 3, 4), (6,)])
    def test_rank_arrays_equal_builder_message_for_message(self, name, shape):
        guest = Torus(shape)
        generated = traffic_rank_arrays(name, guest)
        if generated is None:
            pytest.skip(f"{name} has no vectorized generator")
        pattern = traffic_pattern(name, guest)
        built = pattern.endpoint_rank_arrays(guest.shape)
        for got, want in zip(generated, built):
            assert got.dtype == want.dtype
            assert (got == want).all()

    @given(kind=graph_kinds, shape=small_shapes())
    @settings(max_examples=30, deadline=None)
    def test_new_patterns_agree_on_random_guests(self, kind, shape):
        guest = _graph(kind, shape)
        for name in NEW_PATTERNS:
            generated = traffic_rank_arrays(name, guest)
            built = traffic_pattern(name, guest).endpoint_rank_arrays(guest.shape)
            for got, want in zip(generated, built):
                assert (got == want).all()

    def test_message_size_threads_through_both_forms(self):
        guest = Torus((3, 4))
        pattern = random_permutation_traffic(guest, message_size=2.5)
        assert all(message.size == 2.5 for message in pattern.messages)
        _, _, sizes = traffic_rank_arrays("hotspot", guest, message_size=0.5)
        assert (sizes == 0.5).all()

    def test_unknown_pattern_name(self):
        with pytest.raises(SimulationError, match="unknown traffic pattern"):
            traffic_pattern("tsunami", Torus((3, 4)))
        assert traffic_rank_arrays("tsunami", Torus((3, 4))) is None


class TestWorkloadShapes:
    @given(kind=graph_kinds, shape=small_shapes())
    @settings(max_examples=30, deadline=None)
    def test_random_permutation_is_injective_without_fixed_points(self, kind, shape):
        guest = _graph(kind, shape)
        pattern = random_permutation_traffic(guest)
        sources = [guest.node_index(m.source) for m in pattern.messages]
        targets = [guest.node_index(m.destination) for m in pattern.messages]
        assert len(set(sources)) == len(sources)  # each task sends at most once
        assert len(set(targets)) == len(targets)  # ...and receives at most once
        assert all(s != t for s, t in zip(sources, targets))

    def test_random_permutation_seeds_are_independent(self):
        guest = Torus((3, 4))
        base = random_permutation_traffic(guest, seed=0)
        again = random_permutation_traffic(guest, seed=0)
        other = random_permutation_traffic(guest, seed=1)
        assert base.messages == again.messages
        assert base.messages != other.messages
        assert base.name.endswith("/s0") and other.name.endswith("/s1")

    @given(kind=graph_kinds, shape=small_shapes())
    @settings(max_examples=30, deadline=None)
    def test_hotspot_fans_every_task_into_the_sink(self, kind, shape):
        guest = _graph(kind, shape)
        pattern = hotspot_traffic(guest)
        assert len(pattern.messages) == guest.size - 1
        sink = guest.index_node(0)
        assert all(m.destination == sink for m in pattern.messages)
        sources = {guest.node_index(m.source) for m in pattern.messages}
        assert sources == set(range(1, guest.size))

    @given(kind=graph_kinds, shape=small_shapes())
    @settings(max_examples=30, deadline=None)
    def test_bursty_draws_bounded_self_free_bursts(self, kind, shape):
        guest = _graph(kind, shape)
        pattern = bursty_traffic(guest)
        assert 1 <= len(pattern.messages) <= 3 * max(1, guest.size // 4)
        assert all(m.source != m.destination for m in pattern.messages)
        assert bursty_traffic(guest).messages == pattern.messages


class TestWorkloadSimulation:
    @pytest.mark.parametrize("name", NEW_PATTERNS)
    def test_phase_simulation_identical_across_backends(self, name):
        guest, host = Torus((3, 4)), Mesh((3, 4))
        results = {}
        for backend in ("array", "loop"):
            with use_context(backend=backend):
                embedding = embed(guest, host)
                pattern = traffic_pattern(name, guest)
                result = simulate_phase(HostNetwork(host), embedding, pattern)
                results[backend] = (result.makespan, result.statistics.as_row())
        assert results["array"] == results["loop"]

    def test_hotspot_is_contention_dominated(self):
        guest = host = Torus((4, 4))
        embedding = embed(guest, host)
        result = simulate_phase(HostNetwork(host), embedding, hotspot_traffic(guest))
        # The sink's four incident links serialize 15 unit messages.
        assert result.makespan >= (guest.size - 1) / 4
