"""Unit tests for increasing-dimension embeddings (Section 4.1, Theorems 32-33)."""

import pytest

from repro.core.expansion import ExpansionFactor, find_unit_dilation_torus_factor
from repro.core.increasing import F_value, G_value, H_value, embed_increasing
from repro.exceptions import NoExpansionError, ShapeMismatchError
from repro.graphs.base import Mesh, Torus

FIGURE11_FACTOR = ExpansionFactor(((2, 2), (2, 3)))


class TestComponentFunctions:
    """Definition 31, with the Figure 11 configuration L=(4,6), V=((2,2),(2,3))."""

    def test_F_concatenates_f_values(self):
        assert F_value(FIGURE11_FACTOR, (0, 0)) == (0, 0, 0, 0)
        # f_(2,2)(3) = (1, 0); f_(2,3)(5) = (1, 0)
        assert F_value(FIGURE11_FACTOR, (3, 5)) == (1, 0, 1, 0)

    def test_G_concatenates_g_values(self):
        assert G_value(FIGURE11_FACTOR, (0, 0)) == (0, 0, 0, 0)

    def test_H_concatenates_h_values(self):
        # h on a 2-dimensional base is r, which starts at (l1 - 1, 0).
        assert H_value(FIGURE11_FACTOR, (0, 0)) == (1, 0, 1, 0)

    def test_all_are_injective_on_the_guest(self):
        guest = Mesh((4, 6))
        for fn in (F_value, G_value, H_value):
            images = {fn(FIGURE11_FACTOR, node) for node in guest.nodes()}
            assert len(images) == 24

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            F_value(FIGURE11_FACTOR, (1, 2, 3))


class TestTheorem32:
    def test_mesh_guest_unit_dilation(self):
        for host in (Mesh((2, 2, 2, 3)), Torus((2, 2, 2, 3))):
            embedding = embed_increasing(Mesh((4, 6)), host)
            embedding.validate()
            assert embedding.dilation() == 1

    def test_torus_guest_torus_host_unit_dilation(self):
        embedding = embed_increasing(Torus((4, 6)), Torus((2, 2, 2, 3)))
        embedding.validate()
        assert embedding.dilation() == 1

    def test_odd_torus_guest_mesh_host_dilation_two(self):
        # (3, 9)-torus in a (3, 3, 3)-mesh: odd size, dilation 2 is optimal.
        embedding = embed_increasing(Torus((3, 9)), Mesh((3, 3, 3)))
        embedding.validate()
        assert embedding.dilation() == 2
        assert embedding.predicted_dilation == 2

    def test_even_torus_guest_mesh_host_unit_dilation_with_good_factor(self):
        # The paper's (6,12)-torus in a (6,3,2,2)-mesh example.
        embedding = embed_increasing(Torus((6, 12)), Mesh((6, 3, 2, 2)))
        embedding.validate()
        assert embedding.dilation() == 1
        assert embedding.strategy == "increasing:H_V(even-first)"

    def test_even_torus_guest_mesh_host_dilation_two_with_bad_factor(self):
        # Forcing the factor ((6), (3,2,2)) reproduces the dilation-2 variant.
        factor = ExpansionFactor(((6,), (3, 2, 2)))
        embedding = embed_increasing(
            Torus((6, 12)), Mesh((6, 3, 2, 2)), factor, prefer_unit_dilation=False
        )
        embedding.validate()
        assert embedding.predicted_dilation == 2
        assert 1 <= embedding.dilation() <= 2

    def test_size_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            embed_increasing(Mesh((4, 6)), Mesh((2, 2, 2, 2)))

    def test_dimension_checks(self):
        with pytest.raises(NoExpansionError):
            embed_increasing(Mesh((4, 6)), Mesh((6, 4)))

    def test_no_expansion_raises(self):
        # (6, 3, 2) cannot be partitioned into groups multiplying to 4 and 9.
        with pytest.raises(NoExpansionError):
            embed_increasing(Mesh((4, 9)), Mesh((6, 3, 2)))

    def test_supplied_factor_validated(self):
        with pytest.raises(NoExpansionError):
            embed_increasing(Mesh((4, 6)), Mesh((2, 2, 2, 3)), ExpansionFactor(((2, 2), (2, 2))))


class TestTheorem33Corollary34:
    def test_mesh_in_hypercube_unit_dilation(self):
        embedding = embed_increasing(Mesh((4, 8)), Torus((2,) * 5))
        embedding.validate()
        assert embedding.dilation() == 1

    def test_torus_in_hypercube_unit_dilation(self):
        embedding = embed_increasing(Torus((4, 8)), Torus((2,) * 5))
        embedding.validate()
        assert embedding.dilation() == 1

    def test_torus_in_hypercube_as_mesh_unit_dilation(self):
        # Even-size torus into a mesh-kind hypercube still achieves dilation 1
        # because every factor list can be made to start with the even number 2.
        embedding = embed_increasing(Torus((4, 8)), Mesh((2,) * 5))
        embedding.validate()
        assert embedding.dilation() == 1

    def test_unit_factor_exists_for_power_of_two_toruses(self):
        assert find_unit_dilation_torus_factor((4, 8), (2,) * 5) is not None
