"""Shared fixtures for the test suite.

The hypothesis strategies live in :mod:`tests.strategies`; they are
re-exported here so that both ``from .conftest import small_shapes`` and
``from .strategies import small_shapes`` work.
"""

from __future__ import annotations

import pytest

from repro.graphs.base import Mesh, Torus

from .strategies import (  # noqa: F401  (re-exported for the test modules)
    MAX_PROPERTY_SIZE,
    fault_specs,
    graph_kinds,
    link_weight_specs,
    same_size_shape_pairs,
    small_even_shapes,
    small_shapes,
    unequal_size_shape_pairs,
)


@pytest.fixture
def figure_shape():
    """The (4, 2, 3) shape used throughout the paper's worked figures."""
    return (4, 2, 3)


@pytest.fixture
def small_mesh():
    return Mesh((3, 4))


@pytest.fixture
def small_torus():
    return Torus((3, 4))
