"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import math

import pytest
from hypothesis import strategies as st

from repro.graphs.base import Mesh, Torus
from repro.types import GraphKind


MAX_PROPERTY_SIZE = 600


@st.composite
def small_shapes(draw, min_dim: int = 1, max_dim: int = 4, min_len: int = 2, max_len: int = 6):
    """Random shapes with a bounded node count, suitable for exhaustive checks."""
    dimension = draw(st.integers(min_value=min_dim, max_value=max_dim))
    shape = []
    for _ in range(dimension):
        shape.append(draw(st.integers(min_value=min_len, max_value=max_len)))
        if math.prod(shape) > MAX_PROPERTY_SIZE:
            # Keep sizes small enough for exhaustive verification.
            shape[-1] = min_len
    return tuple(shape)


@st.composite
def small_even_shapes(draw, **kwargs):
    """Random shapes of even size (at least one even length)."""
    shape = draw(small_shapes(**kwargs))
    if math.prod(shape) % 2 == 1:
        shape = (2,) + shape[1:]
    return shape


graph_kinds = st.sampled_from([GraphKind.TORUS, GraphKind.MESH])


@pytest.fixture
def figure_shape():
    """The (4, 2, 3) shape used throughout the paper's worked figures."""
    return (4, 2, 3)


@pytest.fixture
def small_mesh():
    return Mesh((3, 4))


@pytest.fixture
def small_torus():
    return Torus((3, 4))
