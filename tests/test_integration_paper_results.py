"""Integration tests: the paper's headline results, measured end to end.

Each test reproduces one of the claims recorded in ``EXPERIMENTS.md`` by
building the embedding through the public API and measuring its dilation on
the actual host graph (never trusting the predicted value).
"""

import pytest

from repro.core import (
    embed,
    embed_square,
    fitzgerald_cube_mesh_in_line,
    fitzgerald_square_mesh_in_line,
    harper_hypercube_in_line,
    lowering_dilation_lower_bound,
    mn86_square_torus_in_ring,
    predicted_square_dilation,
)
from repro.core.dispatch import strategy_for
from repro.graphs.base import Hypercube, Line, Mesh, Ring, Torus
from repro.types import GraphKind, ShapedGraphSpec


class TestSection3Summary:
    """The three bullet results at the start of Section 3."""

    @pytest.mark.parametrize("shape", [(6,), (3, 5), (4, 2, 3), (2, 2, 2, 2), (5, 5)])
    @pytest.mark.parametrize("kind", ["mesh", "torus"])
    def test_line_always_unit_dilation(self, shape, kind):
        host = Mesh(shape) if kind == "mesh" else Torus(shape)
        assert embed(Line(host.size), host).dilation() == 1

    @pytest.mark.parametrize("shape", [(6,), (3, 5), (4, 2, 3), (5, 5), (3, 3, 3)])
    def test_ring_in_torus_always_unit_dilation(self, shape):
        host = Torus(shape)
        assert embed(Ring(host.size), host).dilation() == 1

    @pytest.mark.parametrize(
        "shape, expected",
        [((4, 2, 3), 1), ((2, 3), 1), ((3, 4), 1), ((3, 3), 2), ((3, 5), 2), ((7,), 2), ((8,), 2)],
    )
    def test_ring_in_mesh(self, shape, expected):
        host = Mesh(shape)
        assert embed(Ring(host.size), host).dilation() == expected


class TestTheorem32Matrix:
    """The four type combinations of Theorem 32 on the Figure 11 shapes."""

    CASES = [
        (GraphKind.MESH, GraphKind.MESH, 1),
        (GraphKind.MESH, GraphKind.TORUS, 1),
        (GraphKind.TORUS, GraphKind.TORUS, 1),
        (GraphKind.TORUS, GraphKind.MESH, 1),  # even size, good factor exists -> dilation 1
    ]

    @pytest.mark.parametrize("guest_kind, host_kind, expected", CASES)
    def test_4x6_into_2x2x2x3(self, guest_kind, host_kind, expected):
        guest = Torus((4, 6)) if guest_kind.is_torus else Mesh((4, 6))
        host = Torus((2, 2, 2, 3)) if host_kind.is_torus else Mesh((2, 2, 2, 3))
        embedding = embed(guest, host)
        embedding.validate()
        assert embedding.dilation() == expected

    def test_odd_torus_into_mesh_needs_dilation_two(self):
        embedding = embed(Torus((3, 9)), Mesh((3, 3, 3)))
        assert embedding.dilation() == 2

    def test_corollary34_hypercube_targets(self):
        for shape in [(4, 8), (8, 4), (4, 4, 2), (2, 16)]:
            for guest in (Mesh(shape), Torus(shape)):
                host = Hypercube(5)
                assert embed(guest, host).dilation() == 1


class TestTheorem39And43:
    def test_simple_reduction_dilation_formula(self):
        cases = [
            (Mesh((4, 2, 3, 3)), Mesh((8, 9)), 3),
            (Mesh((4, 4, 3)), Mesh((16, 3)), 4),
            (Torus((4, 4, 3)), Torus((16, 3)), 4),
            (Hypercube(6), Mesh((8, 8)), 4),
            (Hypercube(8), Mesh((4, 4, 4, 4)), 2),
        ]
        for guest, host, expected in cases:
            embedding = embed(guest, host)
            embedding.validate()
            assert embedding.dilation() == expected

    def test_general_reduction_examples(self):
        assert embed(Mesh((3, 3, 4)), Mesh((6, 6))).dilation() == 2
        assert embed(Torus((3, 3, 4)), Torus((6, 6))).dilation() == 2

    def test_figure12_supernode_example(self):
        from repro.core.lowering import embed_lowering_general

        embedding = embed_lowering_general(Mesh((3, 3, 6)), Mesh((6, 9)))
        assert embedding.dilation() == 3


class TestSection5Comparisons:
    """The comparisons against known optimal results (Section 5)."""

    @pytest.mark.parametrize("l", [3, 4, 5, 6])
    def test_square_mesh_in_line_is_truly_optimal(self, l):
        ours = embed(Mesh((l, l)), Line(l * l)).dilation()
        assert ours == fitzgerald_square_mesh_in_line(l)

    @pytest.mark.parametrize("l", [3, 4, 5, 6])
    def test_square_torus_in_ring_is_truly_optimal(self, l):
        ours = embed(Torus((l, l)), Ring(l * l)).dilation()
        assert ours == mn86_square_torus_in_ring(l)

    @pytest.mark.parametrize("l", [3, 4])
    def test_cube_mesh_in_line_within_four_thirds(self, l):
        ours = embed(Mesh((l, l, l)), Line(l**3)).dilation()
        optimal = fitzgerald_cube_mesh_in_line(l)
        assert ours == l * l
        assert ours <= optimal * 4 / 3 + 1

    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_hypercube_in_line_matches_2_power_and_harper_ratio(self, d):
        ours = embed(Hypercube(d), Line(2**d)).dilation()
        assert ours == 2 ** (d - 1)
        optimal = harper_hypercube_in_line(d)
        assert optimal <= ours
        if d <= 3:
            assert ours == optimal  # truly optimal for d <= 3 (Section 5)

    def test_lower_bound_never_exceeds_measured_optimal_cases(self):
        # Theorem 47 sanity: the computed lower bound never exceeds a known optimum.
        for l in (3, 4, 5, 6, 8):
            assert lowering_dilation_lower_bound(2, 1, l) <= fitzgerald_square_mesh_in_line(l)
        for d in (3, 4, 5, 6):
            assert lowering_dilation_lower_bound(d, 1, 2) <= harper_hypercube_in_line(d)


class TestSquareTheoremSweep:
    """Theorems 48 and 52 over a parameter sweep, measured exactly."""

    @pytest.mark.parametrize(
        "d, c, l",
        [(2, 1, 3), (2, 1, 4), (2, 1, 5), (3, 1, 3), (4, 2, 3), (4, 2, 2), (4, 1, 2), (6, 3, 2), (6, 2, 2)],
    )
    def test_lowering_divisible_measured_equals_formula(self, d, c, l):
        guest_spec = ShapedGraphSpec(GraphKind.MESH, (l,) * d)
        host_spec = ShapedGraphSpec(GraphKind.MESH, (l ** (d // c),) * c)
        predicted = predicted_square_dilation(guest_spec, host_spec)
        embedding = embed_square(Mesh((l,) * d), Mesh((l ** (d // c),) * c))
        embedding.validate()
        assert embedding.dilation() == predicted == l ** ((d - c) // c)

    @pytest.mark.parametrize("d, c, l", [(1, 2, 9), (1, 3, 8), (2, 4, 4), (1, 2, 16), (2, 4, 9)])
    def test_increasing_divisible_measured_equals_formula(self, d, c, l):
        m = round(l ** (d / c))
        guest = Mesh((l,) * d)
        host = Mesh((m,) * c)
        embedding = embed_square(guest, host)
        embedding.validate()
        assert embedding.dilation() == 1

    @pytest.mark.parametrize("d, c, l", [(2, 3, 8), (3, 2, 4), (3, 2, 9), (5, 2, 4)])
    def test_non_divisible_within_formula(self, d, c, l):
        guest = Mesh((l,) * d)
        host_side = round(l ** (d / c))
        host = Mesh((host_side,) * c)
        assert host.size == guest.size
        predicted = predicted_square_dilation(guest.spec, host.spec)
        embedding = embed_square(guest, host)
        embedding.validate()
        assert embedding.dilation() <= predicted


class TestStrategyCoverage:
    """The dispatcher covers every pair the paper covers."""

    def test_every_supported_strategy_is_reachable(self):
        observed = {
            strategy_for(Mesh((3, 4)), Mesh((3, 4))),
            strategy_for(Mesh((3, 4)), Mesh((4, 3))),
            strategy_for(Ring(12), Mesh((3, 4))),
            strategy_for(Mesh((3, 4)), Line(12)),
            strategy_for(Mesh((4, 6)), Mesh((2, 2, 2, 3))),
            strategy_for(Mesh((4, 2, 3, 3)), Mesh((8, 9))),
            strategy_for(Mesh((3, 3, 4)), Mesh((6, 6))),
            strategy_for(Mesh((8, 8)), Mesh((4, 4, 4))),
        }
        assert observed == {
            "same-shape",
            "permute-dimensions",
            "basic",
            "lowering-simple",
            "increasing",
            "lowering-general",
            "square-increasing",
        }
