"""Differential tests for the batched survey evaluation subsystem.

Two contracts are pinned here:

* **Records** — the batched shard path (`repro.survey.batch`) must produce
  records *byte-identical* to the per-scenario reference path, across
  suites, options and backends (``elapsed_seconds`` timings aside), and must
  reproduce the committed SIM-MAP golden table.
* **Simulator** — the round-based vectorized event loop must equal the heap
  loops bit for bit: makespans, per-message completion times and statistics,
  including with dyadic message sizes (where float ties are exact and
  tie-breaking order is actually observable), and whether phases run one at
  a time or merged into one loop.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.embedding import Embedding
from repro.exceptions import InvalidEmbeddingError, SimulationError
from repro.graphs.base import Mesh, Torus, make_graph
from repro.netsim import (
    CostModel,
    HostNetwork,
    Message,
    TrafficPattern,
    simulate_phase,
    simulate_phases,
)
from repro.netsim.simulator import _phase_arrays, _simulate_arrays
from repro.numbering.arrays import compact_index_dtype
from repro.runtime import ConstructionCache, ExecutionContext, use_context
from repro.runtime.cache import edge_arrays_cache_key
from repro.runtime.registry import build_strategy
from repro.survey import (
    Scenario,
    SurveyOptions,
    all_pairs,
    evaluate_shard_batched,
    read_records,
    run_survey,
    scenarios_for_suite,
)
from repro.survey.runner import evaluate_scenario

from .strategies import same_size_shape_pairs


def strip(record):
    """A record's canonical dict with the timing column removed."""
    return {**record.as_dict(), "elapsed_seconds": None}


def assert_identical_records(batched, reference):
    assert [strip(r) for r in batched] == [strip(r) for r in reference]


def run_batched(scenarios, options):
    with use_context(batch=True):
        return run_survey(scenarios, options)


def run_reference(scenarios, options):
    with use_context(batch=False):
        return run_survey(scenarios, options)


class TestBatchedRecordIdentity:
    def test_smoke_suite(self):
        scenarios = scenarios_for_suite("smoke")
        options = SurveyOptions(workers=1)
        assert_identical_records(
            run_batched(scenarios, options).records,
            run_reference(scenarios, options).records,
        )

    def test_simulation_suite(self):
        scenarios = scenarios_for_suite("simulation", max_nodes=48)
        options = SurveyOptions(workers=1)
        batched = run_batched(scenarios, options).records
        assert_identical_records(batched, run_reference(scenarios, options).records)
        assert all(r.status == "ok" and r.makespan is not None for r in batched)

    def test_exhaustive_pairs_with_congestion(self):
        scenarios = all_pairs(16)
        options = SurveyOptions(workers=1, with_congestion=True)
        batched = run_batched(scenarios, options).records
        assert_identical_records(batched, run_reference(scenarios, options).records)
        assert any(r.status == "unsupported" for r in batched)  # covers that path
        assert all(r.congestion is not None for r in batched if r.status == "ok")

    def test_batched_matches_loop_backend_reference(self):
        # The strongest form of the contract: stacked kernels vs the
        # pure-Python per-edge/per-message loops.
        scenarios = scenarios_for_suite("smoke") + scenarios_for_suite(
            "simulation", max_nodes=24
        )
        options = SurveyOptions(workers=1, with_congestion=True)
        with use_context(backend="array", batch=True):
            batched = run_survey(scenarios, options).records
        with use_context(backend="loop"):
            loop = run_survey(scenarios, options).records
        assert_identical_records(batched, loop)

    def test_parallel_batched_matches_sequential_reference(self):
        scenarios = all_pairs(12)
        with use_context(batch=True):
            parallel = run_survey(scenarios, SurveyOptions(workers=2, shard_size=4))
        assert_identical_records(
            parallel.records,
            run_reference(scenarios, SurveyOptions(workers=1)).records,
        )

    def test_error_and_unsupported_records_identical(self):
        scenarios = [
            Scenario("torus", (2, 3, 5), "torus", (5, 6)),  # may be unsupported
            Scenario(
                "torus", (4, 6), "mesh", (2, 2, 2, 3), strategy="psychic", traffic="transpose"
            ),  # unknown strategy -> error record
            Scenario(
                "torus", (4, 6), "mesh", (2, 2, 2, 3), strategy="paper", traffic="warp"
            ),  # unknown traffic -> error record
        ]
        options = SurveyOptions(workers=1)
        batched = evaluate_shard_batched(scenarios, options)
        reference = [evaluate_scenario(s, options) for s in scenarios]
        assert_identical_records(batched, reference)
        assert batched[1].status == "error" and "KeyError" in batched[1].error
        assert batched[2].status == "error" and "SimulationError" in batched[2].error

    @settings(max_examples=25, deadline=None)
    @given(pairs=st.lists(same_size_shape_pairs(), min_size=1, max_size=6))
    def test_hypothesis_shape_pairs_identical(self, pairs):
        scenarios = []
        for guest_shape, host_shape in pairs:
            for guest_kind, host_kind in (("torus", "mesh"), ("mesh", "torus")):
                scenarios.append(Scenario(guest_kind, guest_shape, host_kind, host_shape))
        options = SurveyOptions(workers=1, with_congestion=True)
        assert_identical_records(
            evaluate_shard_batched(scenarios, options),
            [evaluate_scenario(s, options) for s in scenarios],
        )

    def test_shard_resume_accepts_batched_shards(self, tmp_path):
        scenarios = all_pairs(12)[:6]
        options = SurveyOptions(workers=1, shard_size=3, shard_dir=str(tmp_path))
        first = run_batched(scenarios, options)
        assert first.reused_shard_indices == []
        # A per-scenario rerun resumes from the batched shard files verbatim.
        rerun = run_reference(scenarios, options)
        assert rerun.reused_shard_indices == [0, 1]
        assert_identical_records(rerun.records, first.records)


class TestSimMapGolden:
    def test_batched_records_reproduce_sim_map_golden(self):
        fixture = json.loads(
            (Path(__file__).parent / "golden" / "tab_sim_map.json").read_text()
        )
        # The golden's mapping block: neighbour-exchange phases over the
        # SIM-MAP (task graph, network) pairs, one row per strategy.
        rows = [row for row in fixture["rows"] if "makespan" in row][:12]
        pairs = [
            ("torus", (8, 8), "mesh", (4, 4, 4)),
            ("mesh", (8, 8), "torus", (4, 4, 4)),
            ("torus", (4, 4, 4), "mesh", (8, 8)),
        ]
        strategies = ("paper", "lexicographic", "bfs", "random")
        scenarios = [
            Scenario(gk, gs, hk, hs, strategy=name, traffic="neighbor-exchange")
            for gk, gs, hk, hs in pairs
            for name in strategies
        ]
        report = run_batched(scenarios, SurveyOptions(workers=1))
        assert len(report.records) == len(rows)
        for record, row in zip(report.records, rows):
            assert record.status == "ok"
            assert record.strategy == row["strategy"]
            assert record.dilation == row["dilation"]
            assert record.max_hops == row["max hops"]
            assert record.max_link_load == row["max link msgs"]
            assert round(record.makespan, 1) == row["makespan"]


def _placed_phase(draw):
    guest, host = draw(
        st.sampled_from(
            [
                (Torus((3, 4)), Mesh((2, 2, 3))),
                (Mesh((2, 2, 3)), Torus((3, 4))),
                (Torus((3, 4)), Mesh((12,))),
                (Torus((2, 2, 2)), Mesh((4, 2))),
                (Mesh((4, 4)), Torus((2, 2, 2, 2))),
            ]
        )
    )
    embedding = build_strategy(
        draw(st.sampled_from(["paper", "lexicographic", "random"])), guest, host
    )
    nodes = list(guest.nodes())
    dyadic = st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0])
    messages = draw(
        st.lists(
            st.builds(
                Message,
                source=st.sampled_from(nodes),
                destination=st.sampled_from(nodes),
                size=dyadic,
            ),
            min_size=0,
            max_size=24,
        )
    )
    model = CostModel(
        alpha=draw(st.sampled_from([0.0, 0.5, 1.0])),
        bandwidth=draw(st.sampled_from([1.0, 2.0])),
    )
    network = HostNetwork(host, model)
    traffic = TrafficPattern(name="hypothesis", messages=tuple(messages))
    return network, embedding, traffic


placed_phases = st.composite(_placed_phase)


class TestRoundSimulatorEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(placed_phases())
    def test_rounds_equal_heap_and_loop_with_dyadic_sizes(self, phase):
        network, embedding, traffic = phase
        with use_context(backend="array"):
            rounds = simulate_phase(network, embedding, traffic)
            space, routes, _sizes, occupancy, hop_occupancy = _phase_arrays(
                network, embedding, traffic
            )
        heap_makespan, heap_completion = _simulate_arrays(
            space, routes, occupancy, 5_000_000, hop_occupancy
        )
        with use_context(backend="loop"):
            loop = simulate_phase(network, embedding, traffic)
        assert rounds.makespan == heap_makespan == loop.makespan
        assert rounds.per_message_completion == tuple(heap_completion)
        assert rounds.per_message_completion == loop.per_message_completion
        assert rounds.statistics == loop.statistics

    @settings(max_examples=20, deadline=None)
    @given(st.lists(placed_phases(), min_size=1, max_size=4))
    def test_merged_phases_equal_individual_phases(self, phases):
        with use_context(backend="array"):
            merged = simulate_phases(phases)
            individual = [simulate_phase(*phase) for phase in phases]
        assert [result.makespan for result in merged] == [
            result.makespan for result in individual
        ]
        assert [result.per_message_completion for result in merged] == [
            result.per_message_completion for result in individual
        ]
        assert [result.statistics for result in merged] == [
            result.statistics for result in individual
        ]

    def test_empty_and_zero_hop_phases(self):
        guest = host = Torus((2, 2))
        network = HostNetwork(host)
        embedding = Embedding.identity(guest, host)
        node = (0, 0)
        empty = TrafficPattern(name="empty", messages=())
        self_loop = TrafficPattern(name="self", messages=(Message(node, node),))
        with use_context(backend="array"):
            results = simulate_phases(
                [(network, embedding, empty), (network, embedding, self_loop)]
            )
        assert results[0].makespan == 0.0
        assert results[0].per_message_completion == ()
        assert results[1].makespan == 0.0
        assert results[1].per_message_completion == (0.0,)

    def test_max_events_budget_is_per_phase(self):
        guest, host = Torus((4, 4)), Mesh((2, 2, 2, 2))
        network = HostNetwork(host)
        from repro.netsim import neighbor_exchange_traffic

        traffic = neighbor_exchange_traffic(guest)
        embedding = build_strategy("paper", guest, host)
        with use_context(backend="array"):
            with pytest.raises(SimulationError):
                simulate_phase(network, embedding, traffic, max_events=3)
            with pytest.raises(SimulationError):
                simulate_phases([(network, embedding, traffic)], max_events=3)
        # A degenerate-window phase (alpha 0, infinite bandwidth collapses
        # the batch window) still terminates and matches the loop reference.
        slow = HostNetwork(host, CostModel(alpha=0.0, bandwidth=float("inf")))
        with use_context(backend="array"):
            array = simulate_phase(slow, embedding, traffic)
        with use_context(backend="loop"):
            loop = simulate_phase(slow, embedding, traffic)
        assert array.makespan == loop.makespan == 0.0
        assert array.per_message_completion == loop.per_message_completion


class TestDtypeDownsizing:
    def test_compact_index_dtype_thresholds(self):
        assert compact_index_dtype(0) is np.int32
        assert compact_index_dtype(2**31 - 1) is np.int32
        assert compact_index_dtype(2**31) is np.int64
        with pytest.raises(ValueError):
            compact_index_dtype(-1)

    def test_stacked_images_use_int32_at_survey_scale(self):
        from repro.analysis.metrics import stack_host_index_arrays

        guest, host = Torus((4, 6)), Mesh((2, 2, 2, 3))
        embeddings = [build_strategy(n, guest, host) for n in ("paper", "lexicographic")]
        images = stack_host_index_arrays(embeddings, host)
        assert images.dtype == np.int32
        assert images.shape == (2, host.size)
        for row, embedding in zip(images, embeddings):
            assert (row == embedding.host_index_array()).all()


class TestValidateArraySinglePass:
    def test_validate_runs_one_unique_pass(self, monkeypatch):
        calls = {"count": 0}
        real_unique = np.unique

        def counting_unique(*args, **kwargs):
            calls["count"] += 1
            return real_unique(*args, **kwargs)

        guest, host = Torus((3, 4)), Mesh((3, 4))
        embedding = Embedding.from_index_array(
            guest, host, np.arange(12, dtype=np.int64)
        )
        monkeypatch.setattr(np, "unique", counting_unique)
        embedding.validate()
        assert calls["count"] == 1

    def test_duplicate_images_still_raise_with_offender(self):
        guest, host = Torus((3, 4)), Mesh((3, 4))
        indices = np.arange(12, dtype=np.int64)
        indices[5] = 7
        embedding = Embedding.from_index_array(guest, host, indices)
        with pytest.raises(InvalidEmbeddingError, match="more than once"):
            embedding.validate()


class TestDerivedArrayMemoization:
    def test_edge_index_arrays_cached_per_graph(self):
        graph = Torus((3, 4))
        first = graph.edge_index_arrays()
        second = graph.edge_index_arrays()
        assert first[0] is second[0] and first[1] is second[1]
        assert not first[0].flags.writeable and not first[1].flags.writeable
        fresh_u, fresh_v = Torus((3, 4)).edge_index_arrays()
        assert (first[0] == fresh_u).all() and (first[1] == fresh_v).all()

    def test_node_digit_array_cached_and_correct(self):
        graph = Mesh((2, 3))
        digits = graph.node_digit_array()
        assert digits is graph.node_digit_array()
        assert not digits.flags.writeable
        assert [tuple(row) for row in digits.tolist()] == list(graph.nodes())

    def test_construction_cache_memoizes_edge_arrays(self):
        cache = ConstructionCache()
        graph = Torus((2, 2, 3))
        assert cache.fetch_edge_arrays(graph) is None
        cache.store_edge_arrays(graph, graph.edge_index_arrays())
        u, v = cache.fetch_edge_arrays(make_graph("torus", (2, 2, 3)))
        expected_u, expected_v = graph.edge_index_arrays()
        assert (u == expected_u).all() and (v == expected_v).all()
        # Bookkeeping entries never count as constructions.
        assert cache.construction_count == 0

    def test_batched_survey_populates_edge_array_memo(self):
        cache = ConstructionCache()
        scenarios = scenarios_for_suite("smoke")
        with use_context(batch=True, cache=cache):
            report = run_survey(scenarios, SurveyOptions(workers=1))
        assert not report.failed
        assert any(key[0] == "edges" for key in cache.data)
        # The memoized pair round-trips through the key helper.
        guest = scenarios[0].guest_graph()
        assert edge_arrays_cache_key(guest) in cache.data


class TestContextAndCli:
    def test_batch_flag_defaults_on_and_pickles(self):
        import pickle

        context = ExecutionContext()
        assert context.batch is True
        off = ExecutionContext(batch=False)
        assert pickle.loads(pickle.dumps(off)).batch is False

    def test_survey_cli_no_batch_matches_batched(self, tmp_path):
        batched_path = tmp_path / "batched.json"
        reference_path = tmp_path / "reference.json"
        assert main(["survey", "--smoke", "--output", str(batched_path)]) == 0
        assert (
            main(["survey", "--smoke", "--no-batch", "--output", str(reference_path)])
            == 0
        )
        assert_identical_records(
            read_records(batched_path), read_records(reference_path)
        )
