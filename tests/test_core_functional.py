"""Unit tests for functional (non-materialized) embeddings."""

import pytest

from repro.core.dispatch import embed
from repro.core.functional import functional_embed
from repro.exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from repro.graphs.base import Hypercube, Line, Mesh, Ring, Torus
from repro.types import GraphKind, ShapedGraphSpec


MATERIALIZABLE_PAIRS = [
    (Line(24), Mesh((4, 2, 3))),
    (Ring(24), Mesh((4, 2, 3))),
    (Ring(45), Mesh((3, 3, 5))),
    (Ring(24), Torus((4, 2, 3))),
    (Torus((3, 4)), Mesh((3, 4))),
    (Mesh((3, 4)), Mesh((4, 3))),
    (Torus((4, 6)), Mesh((2, 2, 2, 3))),
    (Mesh((4, 6)), Torus((2, 2, 2, 3))),
    (Torus((3, 9)), Mesh((3, 3, 3))),
    (Hypercube(6), Mesh((8, 8))),
    (Mesh((4, 2, 3, 3)), Mesh((8, 9))),
    (Torus((4, 4, 3)), Mesh((16, 3))),
]


class TestAgreementWithMaterializedEmbeddings:
    @pytest.mark.parametrize("guest, host", MATERIALIZABLE_PAIRS)
    def test_pointwise_values_match_embed(self, guest, host):
        functional = functional_embed(guest, host)
        materialized = embed(guest, host)
        for node in guest.nodes():
            assert functional(node) == materialized[node]

    @pytest.mark.parametrize("guest, host", MATERIALIZABLE_PAIRS)
    def test_materialize_is_valid_and_within_prediction(self, guest, host):
        functional = functional_embed(guest, host)
        embedding = functional.materialize()
        embedding.validate()
        if functional.predicted_dilation is not None:
            assert embedding.dilation() <= functional.predicted_dilation

    def test_map_index_matches_call(self):
        functional = functional_embed(Ring(24), Mesh((4, 2, 3)))
        for x in range(24):
            assert functional.map_index(x) == functional((x,))


class TestSampling:
    def test_sample_dilation_is_a_lower_bound(self):
        guest, host = Torus((4, 4, 3)), Mesh((16, 3))
        functional = functional_embed(guest, host)
        exact = embed(guest, host).dilation()
        sampled = functional.sample_dilation(samples=500, seed=3)
        assert 1 <= sampled <= exact

    def test_sample_dilation_finds_the_true_value_on_dense_sampling(self):
        guest, host = Mesh((4, 2, 3, 3)), Mesh((8, 9))
        functional = functional_embed(guest, host)
        assert functional.sample_dilation(samples=2000, seed=0) == embed(guest, host).dilation()


class TestHugeGraphs:
    def test_pointwise_evaluation_on_a_billion_node_torus(self):
        # (1024, 1024, 1024)-torus into a (1048576, 1024)-torus (a simple
        # reduction): the mapping is evaluated pointwise without ever
        # enumerating the 2^30 nodes.
        guest = ShapedGraphSpec(GraphKind.TORUS, (1024, 1024, 1024))
        host = ShapedGraphSpec(GraphKind.TORUS, (1048576, 1024))
        functional = functional_embed(guest, host)
        image = functional((1023, 512, 7))
        assert len(image) == 2
        assert 0 <= image[0] < 1048576 and 0 <= image[1] < 1024
        assert functional.predicted_dilation == 1024

    def test_huge_line_guest(self):
        guest = ShapedGraphSpec(GraphKind.MESH, (2**24,))
        host = ShapedGraphSpec(GraphKind.MESH, (4096, 4096))
        functional = functional_embed(guest, host)
        assert functional.predicted_dilation == 1
        a = functional.map_index(2**23)
        b = functional.map_index(2**23 + 1)
        assert functional.host_distance(a, b) == 1

    def test_sampled_dilation_on_huge_ring(self):
        guest = ShapedGraphSpec(GraphKind.TORUS, (2**20,))
        host = ShapedGraphSpec(GraphKind.TORUS, (1024, 1024))
        functional = functional_embed(guest, host)
        assert functional.sample_dilation(samples=256, seed=1) == 1


class TestErrors:
    def test_size_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            functional_embed(Mesh((4, 4)), Mesh((4, 5)))

    def test_unsupported_general_reduction(self):
        with pytest.raises(UnsupportedEmbeddingError):
            functional_embed(Mesh((3, 3, 4)), Mesh((6, 6)))

    def test_unsupported_square_increasing(self):
        with pytest.raises(UnsupportedEmbeddingError):
            functional_embed(Mesh((8, 8)), Mesh((4, 4, 4)))
