"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, parse_graph
from repro.graphs.base import Mesh, Torus


class TestParseGraph:
    def test_torus(self):
        graph = parse_graph("torus:4,6")
        assert graph == Torus((4, 6))

    def test_mesh_with_spaces(self):
        assert parse_graph("mesh: 2,2,3") == Mesh((2, 2, 3))

    def test_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_graph("blob")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_graph("cube:2,2")


class TestCommands:
    def test_embed_command(self, capsys):
        assert main(["embed", "--guest", "torus:4,6", "--host", "mesh:2,2,2,3"]) == 0
        out = capsys.readouterr().out
        assert "dilation" in out
        assert "Torus(4, 6)" in out

    def test_embed_with_grid_and_congestion(self, capsys):
        assert main(
            ["embed", "--guest", "ring:12", "--host", "mesh:3,4", "--grid", "--congestion"]
        ) == 0
        out = capsys.readouterr().out
        assert "congestion" in out

    @pytest.mark.parametrize("figure", ["fig4", "fig9", "fig10", "fig11", "fig12"])
    def test_figure_commands(self, figure, capsys):
        assert main(["figure", figure]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 3

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_simulate_command(self, capsys):
        assert main(["simulate", "--guest", "torus:4,4", "--host", "mesh:2,2,2,2"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "random" in out and "makespan" in out

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "torus-mesh-embed" in out
        assert any(part[:1].isdigit() for part in out.split())  # a version number

    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_suite_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["survey", "--suite", "nope"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestOptimizeCommand:
    OPT = ["optimize", "--guest", "torus:4x4", "--host", "mesh:4x4"]

    def test_optimize_command(self, capsys):
        assert main(self.OPT + ["--budget", "80", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        for column in ("objective", "dilation", "steps", "seeded from", "improved"):
            assert column in out
        assert "Torus(4, 4)" in out and "Mesh(4, 4)" in out

    def test_optimize_backends_print_identical_tables(self, capsys):
        flags = ["--budget", "60", "--seed", "3"]
        assert main(self.OPT + flags + ["--method", "array"]) == 0
        array_out = capsys.readouterr().out
        assert main(self.OPT + flags + ["--method", "loop"]) == 0
        assert capsys.readouterr().out == array_out

    def test_optimize_cache_roundtrip_feeds_the_survey(self, tmp_path, capsys):
        cache_file = tmp_path / "optima.pkl"
        flags = ["--budget", "80", "--seed", "7", "--cache", str(cache_file)]
        assert main(self.OPT + flags) == 0
        first = capsys.readouterr().out
        assert "1 optima" in first and cache_file.exists()
        # A survey over the optima suite warm-starts from the same cache.
        assert main(
            [
                "survey",
                "--suite",
                "optima",
                "--smoke",
                "--output",
                str(tmp_path / "out.json"),
                "--cache",
                str(cache_file),
            ]
        ) == 0
        second = capsys.readouterr().out
        assert "optima" in second and "hits this run" in second

    def test_unknown_objective_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(self.OPT + ["--objective", "latency"])
        assert excinfo.value.code == 2

    def test_size_mismatch_reports_an_error(self, capsys):
        code = main(["optimize", "--guest", "torus:4x4", "--host", "mesh:4,5"])
        assert code != 0


class TestSimulateFlags:
    SIM = ["simulate", "--guest", "torus:4,4", "--host", "mesh:2,2,2,2"]

    @pytest.mark.parametrize(
        "traffic", ["neighbor-exchange", "transpose", "all-to-all-groups"]
    )
    def test_traffic_flag_selects_the_pattern(self, traffic, capsys):
        assert main(self.SIM + ["--traffic", traffic]) == 0
        out = capsys.readouterr().out
        assert traffic in out  # the pattern name heads the table title
        for column in ("strategy", "dilation", "max hops", "makespan"):
            assert column in out

    def test_unknown_traffic_is_rejected_by_the_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.SIM + ["--traffic", "psychic"])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("method", ["auto", "array", "loop"])
    def test_method_flag_backends_agree(self, method, capsys):
        assert main(self.SIM + ["--method", method]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "makespan" in out

    def test_method_flag_rows_identical_across_backends(self, capsys):
        main(self.SIM + ["--method", "array"])
        array_out = capsys.readouterr().out
        main(self.SIM + ["--method", "loop"])
        loop_out = capsys.readouterr().out
        assert array_out == loop_out

    def test_unknown_method_is_rejected_by_the_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(self.SIM + ["--method", "vectorized"])
        assert excinfo.value.code == 2

    def test_cache_flag_persists_across_invocations(self, tmp_path, capsys):
        cache_file = tmp_path / "constructions.pkl"
        assert main(self.SIM + ["--cache", str(cache_file)]) == 0
        first = capsys.readouterr().out
        assert "0 hits" in first and cache_file.exists()
        assert main(self.SIM + ["--cache", str(cache_file)]) == 0
        second = capsys.readouterr().out
        assert "hits this run" in second and "0 hits" not in second


class TestSurveyResumeFlags:
    def survey(self, tmp_path, *extra):
        return [
            "survey",
            "--smoke",
            "--output",
            str(tmp_path / "out.json"),
            "--shard-dir",
            str(tmp_path / "shards"),
            "--shard-size",
            "3",
            *extra,
        ]

    def test_resume_skips_finished_shards(self, tmp_path, capsys):
        assert main(self.survey(tmp_path)) == 0
        first = capsys.readouterr().out
        assert "resumed" not in first
        assert main(self.survey(tmp_path)) == 0
        second = capsys.readouterr().out
        assert "resumed 3 finished shard(s)" in second  # 8 scenarios / size 3

    def test_no_resume_recomputes_every_shard(self, tmp_path, capsys):
        assert main(self.survey(tmp_path)) == 0
        capsys.readouterr()
        assert main(self.survey(tmp_path, "--no-resume")) == 0
        out = capsys.readouterr().out
        assert "resumed" not in out

    def test_resumed_run_writes_identical_records(self, tmp_path, capsys):
        assert main(self.survey(tmp_path)) == 0
        capsys.readouterr()
        first = json.loads((tmp_path / "out.json").read_text())
        assert main(self.survey(tmp_path)) == 0
        second = json.loads((tmp_path / "out.json").read_text())

        def strip(payload):
            return [
                {key: value for key, value in row.items() if key != "elapsed_seconds"}
                for row in payload["records"]
            ]

        assert strip(first) == strip(second)
        assert first["count"] == second["count"] == 8

    def test_survey_exit_code_and_columns(self, tmp_path, capsys):
        assert main(self.survey(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "8 pairs (8 measured, 0 unsupported, 0 failed)" in out
        assert "strategy" in out and "max dilation" in out
