"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, parse_graph
from repro.graphs.base import Mesh, Torus


class TestParseGraph:
    def test_torus(self):
        graph = parse_graph("torus:4,6")
        assert graph == Torus((4, 6))

    def test_mesh_with_spaces(self):
        assert parse_graph("mesh: 2,2,3") == Mesh((2, 2, 3))

    def test_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_graph("blob")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_graph("cube:2,2")


class TestCommands:
    def test_embed_command(self, capsys):
        assert main(["embed", "--guest", "torus:4,6", "--host", "mesh:2,2,2,3"]) == 0
        out = capsys.readouterr().out
        assert "dilation" in out
        assert "Torus(4, 6)" in out

    def test_embed_with_grid_and_congestion(self, capsys):
        assert main(
            ["embed", "--guest", "ring:12", "--host", "mesh:3,4", "--grid", "--congestion"]
        ) == 0
        out = capsys.readouterr().out
        assert "congestion" in out

    @pytest.mark.parametrize("figure", ["fig4", "fig9", "fig10", "fig11", "fig12"])
    def test_figure_commands(self, figure, capsys):
        assert main(["figure", figure]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 3

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_simulate_command(self, capsys):
        assert main(["simulate", "--guest", "torus:4,4", "--host", "mesh:2,2,2,2"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "random" in out and "makespan" in out

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])
