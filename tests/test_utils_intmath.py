"""Unit tests for integer arithmetic helpers, including Lemma 50."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.intmath import (
    divisors,
    exact_nth_root,
    factorizations_into_parts,
    gcd,
    integer_nth_root,
    is_perfect_power,
    is_power_of,
    lemma50_root,
    prime_factorization,
)


class TestPrimeFactorization:
    def test_small_values(self):
        assert prime_factorization(1) == ()
        assert prime_factorization(2) == ((2, 1),)
        assert prime_factorization(12) == ((2, 2), (3, 1))
        assert prime_factorization(97) == ((97, 1),)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            prime_factorization(0)

    @given(st.integers(min_value=2, max_value=10_000))
    def test_product_of_factors_reconstructs(self, n):
        total = 1
        for prime, exponent in prime_factorization(n):
            total *= prime**exponent
        assert total == n


class TestDivisors:
    def test_divisors_of_24(self):
        assert divisors(24) == [1, 2, 3, 4, 6, 8, 12, 24]

    def test_proper_and_exclude_one(self):
        assert divisors(24, proper=True, exclude_one=True) == [2, 3, 4, 6, 8, 12]

    def test_divisors_of_prime(self):
        assert divisors(13, exclude_one=True) == [13]

    @given(st.integers(min_value=1, max_value=2000))
    def test_every_divisor_divides(self, n):
        for d in divisors(n):
            assert n % d == 0


class TestRoots:
    def test_integer_nth_root(self):
        assert integer_nth_root(26, 3) == 2
        assert integer_nth_root(27, 3) == 3
        assert integer_nth_root(28, 3) == 3

    def test_exact_nth_root(self):
        assert exact_nth_root(64, 3) == 4
        assert exact_nth_root(64, 2) == 8
        assert exact_nth_root(65, 2) is None

    def test_is_perfect_power(self):
        assert is_perfect_power(1024, 10)
        assert not is_perfect_power(1000, 10)

    def test_is_power_of(self):
        assert is_power_of(8, 2) == 3
        assert is_power_of(1, 2) == 0
        assert is_power_of(12, 2) is None

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10))
    def test_floor_root_property(self, value, n):
        root = integer_nth_root(value, n)
        assert root**n <= value < (root + 1) ** n


class TestLemma50:
    def test_statement_of_lemma(self):
        # 12^(2/3) is not an integer so the premise fails.
        assert lemma50_root(12, 2, 3) is None
        # 64^(2/3) = 16 is an integer, u=2 and v=3 are coprime, so 64^(1/3) = 4.
        assert lemma50_root(64, 2, 3) == 4
        # 8^(2/3) = 4 is an integer, so 8^(1/3) = 2 must be one as well.
        assert lemma50_root(8, 2, 3) == 2

    def test_requires_coprime(self):
        with pytest.raises(ValueError):
            lemma50_root(64, 2, 4)

    def test_requires_x_greater_than_one(self):
        with pytest.raises(ValueError):
            lemma50_root(1, 2, 3)

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    def test_lemma_holds_for_constructed_instances(self, base, u, v):
        # Build x = base**v so that x**(u/v) = base**u is an integer.
        if math.gcd(u, v) != 1:
            return
        x = base**v
        root = lemma50_root(x, u, v)
        assert root == base


class TestFactorizations:
    def test_factorizations_of_12_two_parts(self):
        parts = set(factorizations_into_parts(12, num_parts=2))
        assert parts == {(2, 6), (6, 2), (3, 4), (4, 3), (12,)} - {(12,)}

    def test_factorizations_all(self):
        parts = set(factorizations_into_parts(8))
        assert (8,) in parts
        assert (2, 4) in parts and (4, 2) in parts
        assert (2, 2, 2) in parts

    def test_every_factorization_multiplies_back(self):
        for parts in factorizations_into_parts(36, max_parts=3):
            assert math.prod(parts) == 36
            assert all(p >= 2 for p in parts)

    def test_num_parts_filter(self):
        assert set(factorizations_into_parts(6, num_parts=1)) == {(6,)}
        assert set(factorizations_into_parts(7, num_parts=2)) == set()

    def test_one_yields_empty_tuple(self):
        assert list(factorizations_into_parts(1)) == [()]

    def test_gcd_wrapper(self):
        assert gcd(12, 18) == 6
