"""Chaos-plane tests: deterministic injection, recovery, quarantine, serving.

The contract under test is the PR-10 failure model (``docs/ARCHITECTURE.md``,
"Failure model"): a seeded :class:`~repro.runtime.chaos.ChaosPlan` replays
the identical fault schedule; the survey runner retries, recovers crashed
pools and quarantines poison shards while healthy scenarios stay
byte-identical to a fault-free run; the serving tier sheds, times out,
restarts a dead coalescer and drains gracefully.
"""

import threading
import time
from concurrent.futures import Future

import pytest

from repro.runtime import (
    ChaosPlan,
    ExecutionContext,
    InjectedFault,
    chaos_counters,
    inject,
    reset_chaos_counters,
    use_context,
)
from repro.service import (
    CoalescerClosed,
    ReproService,
    RequestCoalescer,
    ServiceClient,
    ServiceOverloadedError,
    ServiceRequest,
    ServiceTimeoutError,
    serve,
)
from repro.survey import SurveyOptions, run_survey, scenarios_for_suite
from repro.utils import atomic_write
from repro.utils.backoff import BackoffPolicy, CircuitBreaker, CircuitOpenError

pytestmark = pytest.mark.smoke

FAST_RETRY = BackoffPolicy(
    max_attempts=3, base_delay=0.01, max_delay=0.02, factor=2.0, jitter=0.5
)


def strip(record_dict):
    return {
        key: value for key, value in record_dict.items() if key != "elapsed_seconds"
    }


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_chaos_counters()
    yield
    reset_chaos_counters()


class TestChaosSpec:
    def test_parse_round_trips_through_token(self):
        spec = "worker_crash:0.02,slow_io:0.05x200ms,torn_write:0.01,seed=7"
        plan = ChaosPlan.parse(spec)
        assert plan.token == spec
        assert ChaosPlan.parse(plan.token) == plan
        assert plan.seed == 7

    def test_parse_accepts_second_delays(self):
        plan = ChaosPlan.parse("slow_io:1x0.2s")
        assert plan.rules[0].delay == pytest.approx(0.2)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "seed=7",  # no fault rules
            "meteor_strike:0.5",  # unknown kind
            "worker_crash",  # no probability
            "worker_crash:2.0",  # out of range
            "worker_crash:x",  # non-numeric
            "slow_io:0.5xfast",  # bad delay
            "worker_crash:0.1,seed=soon",  # bad seed
        ],
    )
    def test_parse_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            ChaosPlan.parse(bad)

    def test_context_coerces_spec_strings(self):
        context = ExecutionContext(chaos="worker_crash:0.5,seed=3")
        assert isinstance(context.chaos, ChaosPlan)
        assert context.chaos.seed == 3

    def test_decisions_are_pure_functions_of_seed_site_and_key(self):
        plan = ChaosPlan.parse("worker_crash:0.5,seed=11")
        rule = plan.rules[0]
        draws = [plan.decides(rule, "survey.shard", ("shard", i, 0)) for i in range(64)]
        again = [plan.decides(rule, "survey.shard", ("shard", i, 0)) for i in range(64)]
        assert draws == again  # replayable
        assert any(draws) and not all(draws)  # a real Bernoulli schedule
        other = ChaosPlan.parse("worker_crash:0.5,seed=12")
        assert draws != [
            other.decides(other.rules[0], "survey.shard", ("shard", i, 0))
            for i in range(64)
        ]

    def test_probability_extremes_shortcut(self):
        always = ChaosPlan.parse("worker_crash:1.0")
        never = ChaosPlan.parse("worker_crash:0.0")
        assert always.decides(always.rules[0], "s", "k")
        assert not never.decides(never.rules[0], "s", "k")


class TestInjectionPoint:
    def test_inject_is_a_noop_without_a_plan(self):
        assert inject("survey.shard") is None
        assert chaos_counters() == {}

    def test_inject_counts_and_returns_error_faults(self):
        with use_context(chaos="torn_write:1.0,seed=1"):
            fault = inject("store.write", kinds=("torn_write",))
        assert fault is not None and fault.kind == "torn_write"
        assert chaos_counters() == {"store.write:torn_write": 1}

    def test_kinds_filter_restricts_what_a_site_honours(self):
        with use_context(chaos="worker_crash:1.0,seed=1"):
            assert inject("store.write", kinds=("torn_write", "slow_io")) is None

    def test_slow_io_sleeps_in_place_and_composes(self):
        with use_context(chaos="slow_io:1.0x30ms,torn_write:1.0,seed=1"):
            started = time.perf_counter()
            fault = inject("store.write", kinds=("torn_write", "slow_io"))
        assert time.perf_counter() - started >= 0.025
        assert fault is not None and fault.kind == "torn_write"
        counters = chaos_counters()
        assert counters["store.write:slow_io"] == 1
        assert counters["store.write:torn_write"] == 1

    def test_injected_fault_survives_pickling(self):
        import pickle

        fault = InjectedFault("worker_crash", "survey.shard")
        clone = pickle.loads(pickle.dumps(fault))
        assert (clone.kind, clone.site) == ("worker_crash", "survey.shard")
        assert "worker_crash" in str(clone)


class TestAtomicWriteChaos:
    def test_torn_write_aborts_before_rename_and_preserves_destination(
        self, tmp_path
    ):
        target = tmp_path / "artifact.json"
        target.write_text("previous")
        with use_context(chaos="torn_write:1.0,seed=1"):
            with pytest.raises(InjectedFault, match="torn_write"):
                with atomic_write(target) as handle:
                    handle.write("half-finished")
        assert target.read_text() == "previous"
        assert list(tmp_path.glob("*.tmp")) == []  # temp file cleaned up

    def test_disabled_plan_writes_normally(self, tmp_path):
        target = tmp_path / "artifact.json"
        with atomic_write(target) as handle:
            handle.write("payload")
        assert target.read_text() == "payload"


class TestSurveyRecovery:
    def test_inline_transient_fault_is_retried(self, tmp_path):
        # Seed 0: shard 0 fires at attempt 0 but not attempt 1, so one
        # retry recovers the whole (sequential) survey.
        scenarios = scenarios_for_suite("smoke")[:2]
        options = SurveyOptions(workers=1, shard_size=2, retry=FAST_RETRY)
        with use_context(chaos="worker_crash:0.5,seed=0"):
            report = run_survey(scenarios, options)
        assert report.retries >= 1
        assert report.quarantined == 0
        assert [record.status for record in report.records] == ["ok", "ok"]
        assert report.chaos_faults.get("survey.shard:worker_crash", 0) >= 1

    def test_inline_poison_shard_is_quarantined_not_fatal(self):
        scenarios = scenarios_for_suite("smoke")[:3]
        options = SurveyOptions(workers=1, shard_size=2, retry=FAST_RETRY)
        with use_context(chaos="worker_crash:1.0,seed=0"):
            report = run_survey(scenarios, options)
        assert report.quarantined == 2  # both shards, after max_attempts each
        assert all(record.status == "failed" for record in report.records)
        assert all("quarantined" in (record.error or "") for record in report.records)
        assert len(report.records) == 3  # every scenario still accounted for

    def test_pooled_worker_crash_recovers_and_matches_fault_free_run(self):
        # Seed 8 at p=0.02: exactly one shard (7) crashes on its first
        # attempt and every retry draw is clean — one pool respawn, full
        # recovery, nothing quarantined.  The crash path goes through a
        # real os._exit(1) in the worker, i.e. BrokenProcessPool recovery.
        scenarios = scenarios_for_suite("smoke")
        with use_context(ExecutionContext(workers=2, shard_size=1)):
            baseline = run_survey(scenarios, SurveyOptions(retry=FAST_RETRY))
        with use_context(
            ExecutionContext(workers=2, shard_size=1, chaos="worker_crash:0.02,seed=8")
        ):
            report = run_survey(scenarios, SurveyOptions(retry=FAST_RETRY))
        assert report.crash_recoveries >= 1
        assert report.retries >= 1
        assert report.quarantined == 0
        expected = {record.scenario_id: record for record in baseline.records}
        assert len(report.records) == len(baseline.records)
        for record in report.records:
            assert record.status == "ok"
            assert strip(record.as_dict()) == strip(
                expected[record.scenario_id].as_dict()
            )

    def test_pooled_poison_shards_quarantine_and_sweep_completes(self):
        scenarios = scenarios_for_suite("smoke")[:2]
        options = SurveyOptions(
            retry=BackoffPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02)
        )
        with use_context(
            ExecutionContext(workers=2, shard_size=1, chaos="worker_crash:1.0,seed=1")
        ):
            report = run_survey(scenarios, options)
        assert report.quarantined == 2
        assert report.crash_recoveries >= 1
        assert all(record.status == "failed" for record in report.records)

    def test_quarantined_shards_are_not_persisted_so_reruns_retry_them(
        self, tmp_path
    ):
        scenarios = scenarios_for_suite("smoke")[:2]
        shard_dir = tmp_path / "shards"
        options = SurveyOptions(
            workers=1, shard_size=1, shard_dir=str(shard_dir), retry=FAST_RETRY
        )
        with use_context(chaos="worker_crash:1.0,seed=0"):
            report = run_survey(scenarios, options)
        assert report.quarantined == 2
        assert list(shard_dir.glob("shard-*.json")) == []
        # Fault-free rerun over the same shard dir recomputes everything.
        report = run_survey(scenarios, options)
        assert [record.status for record in report.records] == ["ok", "ok"]


class TestCoalescerHardening:
    def test_close_fails_pending_requests_when_evaluator_is_wedged(self):
        release = threading.Event()

        def wedged(batch):
            release.wait(30)
            return list(batch)

        coalescer = RequestCoalescer(wedged, window=0.01)
        future = coalescer.submit("request")
        time.sleep(0.05)  # let the batch reach the evaluator
        started = time.perf_counter()
        coalescer.close(timeout=0.2)
        assert time.perf_counter() - started < 5
        with pytest.raises(CoalescerClosed, match="wedged"):
            future.result(timeout=1)
        release.set()

    def test_pending_count_tracks_outstanding_requests(self):
        release = threading.Event()

        def wait_then_echo(batch):
            release.wait(10)
            return list(batch)

        with RequestCoalescer(wait_then_echo, window=0.01) as coalescer:
            assert coalescer.pending_count() == 0
            future = coalescer.submit("request")
            assert coalescer.pending_count() == 1
            release.set()
            future.result(timeout=10)
            assert coalescer.pending_count() == 0

    def test_is_alive_reflects_collector_health(self):
        coalescer = RequestCoalescer(lambda batch: list(batch), window=0.01)
        assert coalescer.is_alive()
        coalescer._loop.call_soon_threadsafe(coalescer._collector.cancel)
        deadline = time.monotonic() + 5
        while coalescer.is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not coalescer.is_alive()
        coalescer.close()


EMBED = ServiceRequest(op="embed", guest="torus:4,6", host="mesh:2,2,2,3")


class TestServiceRecovery:
    def test_admission_queue_sheds_beyond_max_pending(self):
        release = threading.Event()
        with ReproService(window=10.0, max_pending=1, watchdog_interval=0) as service:
            # Park one request inside a long collection window so the
            # admission queue is provably full when the second arrives.
            first = service.submit(EMBED)
            with pytest.raises(ServiceOverloadedError, match="admission queue"):
                service.submit(EMBED)
            assert service.stats.shed == 1
            assert service.stats_snapshot()["recovery"]["shed"] == 1
            release.set()
            assert isinstance(first, Future)

    def test_request_deadline_miss_raises_timeout(self):
        with ReproService(window=0.001, watchdog_interval=0) as service:
            service.coalescer._evaluate_batch = lambda batch: (
                time.sleep(5),
                [(None, 1)] * len(batch),
            )[1]
            with pytest.raises(ServiceTimeoutError, match="deadline"):
                service.handle(EMBED, timeout=0.1)
            assert service.stats.timeouts == 1

    def test_watchdog_restarts_a_dead_coalescer(self):
        with ReproService(window=0.001, watchdog_interval=0.05) as service:
            dead = service.coalescer
            dead._loop.call_soon_threadsafe(dead._collector.cancel)
            deadline = time.monotonic() + 10
            while service.coalescer_restarts == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert service.coalescer_restarts >= 1
            assert service.coalescer is not dead
            record, _ = service.handle(EMBED)  # the replacement serves
            assert record.status == "ok"
            assert (
                service.stats_snapshot()["recovery"]["coalescer_restarts"] >= 1
            )

    def test_request_error_chaos_fails_requests_and_is_counted(self):
        with ReproService(
            window=0.001, chaos="request_error:1.0,seed=5", watchdog_interval=0
        ) as service:
            with pytest.raises(InjectedFault, match="request_error"):
                service.handle(EMBED)
            recovery = service.stats_snapshot()["recovery"]
            assert recovery["chaos_faults"]["service.handle:request_error"] == 1
            assert recovery["chaos"] == "request_error:1,seed=5"

    def test_drain_refuses_new_work(self):
        with ReproService(window=0.001, watchdog_interval=0) as service:
            service.begin_drain()
            with pytest.raises(ServiceOverloadedError, match="draining"):
                service.submit(EMBED)


class TestServiceHTTPRecovery:
    def test_shed_maps_to_503_with_retry_after_and_drain_healthcheck(self):
        with ReproService(window=0.001, watchdog_interval=0) as service:
            server = serve(service, "127.0.0.1", 0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            host, port = server.server_address[:2]
            try:
                client = ServiceClient(
                    f"http://{host}:{port}",
                    timeout=10.0,
                    retry=BackoffPolicy(max_attempts=1, base_delay=0.01),
                )
                assert client.health()["status"] == "serving"
                service.begin_drain()
                with pytest.raises(Exception) as excinfo:
                    client.embed("torus:4,6", "mesh:2,2,2,3")
                assert getattr(excinfo.value, "status", None) == 503
                assert excinfo.value.payload.get("retry_after") == "1"
                with pytest.raises(Exception) as excinfo:
                    client.health()
                assert getattr(excinfo.value, "status", None) == 503
            finally:
                server.shutdown()
                server.server_close()


class TestClientBackoff:
    def test_transport_retries_are_paced_and_counted(self):
        with ReproService(window=0.001, watchdog_interval=0) as service:
            server = serve(service, "127.0.0.1", 0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            host, port = server.server_address[:2]
            try:
                client = ServiceClient(
                    f"http://{host}:{port}", timeout=10.0, retry=FAST_RETRY
                )
                assert client.embed("torus:4,6", "mesh:2,2,2,3")["ok"]
                # A dead keep-alive connection is retried transparently.
                client._connection.close()
                assert client.embed("torus:4,6", "mesh:2,2,2,3")["ok"]
            finally:
                server.shutdown()
                server.server_close()

    def test_connection_refused_exhausts_retries_then_raises(self):
        client = ServiceClient(
            "http://127.0.0.1:9", timeout=0.2, retry=FAST_RETRY
        )
        with pytest.raises(OSError):
            client.invoke({"op": "embed", "guest": "torus:4,6", "host": "mesh:4,6"})
        assert client.retries == FAST_RETRY.max_attempts - 1

    def test_circuit_breaker_opens_after_repeated_failures(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        client = ServiceClient(
            "http://127.0.0.1:9",
            timeout=0.2,
            retry=BackoffPolicy(max_attempts=1, base_delay=0.01),
            breaker=breaker,
        )
        for _ in range(2):
            with pytest.raises(OSError):
                client.stats()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.stats()

    def test_wait_until_ready_honours_one_overall_deadline(self):
        client = ServiceClient(
            "http://127.0.0.1:9", timeout=5.0, retry=FAST_RETRY
        )
        started = time.perf_counter()
        with pytest.raises(OSError):
            client.wait_until_ready(timeout=0.3)
        assert time.perf_counter() - started < 3.0


class TestBackoffPolicy:
    def test_delays_are_capped_and_jittered_within_bounds(self):
        policy = BackoffPolicy(
            max_attempts=5, base_delay=0.1, max_delay=0.4, factor=2.0, jitter=0.5
        )
        from repro.utils.rng import SplitMix64

        rng = SplitMix64(3)
        for attempt in range(8):
            rung = min(0.4, 0.1 * 2.0**attempt)
            delay = policy.delay(attempt, rng)
            assert rung * 0.5 <= delay <= rung

    def test_midpoint_without_rng_and_validation(self):
        policy = BackoffPolicy(base_delay=0.1, max_delay=10.0, jitter=0.5)
        assert policy.delay(0) == pytest.approx(0.075)
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)

    def test_circuit_breaker_half_open_probe_closes_on_success(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=lambda: clock[0]
        )
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        clock[0] = 11.0
        assert breaker.state == "half-open"
        breaker.before_call()  # the probe is let through
        breaker.record_success()
        assert breaker.state == "closed"
