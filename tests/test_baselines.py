"""Unit tests for the baseline embeddings."""

import pytest

from repro.baselines import (
    bfs_order_embedding,
    binary_gray_embedding,
    lexicographic_embedding,
    random_embedding,
)
from repro.baselines.bfs_embedding import bfs_order
from repro.core.dispatch import embed
from repro.exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from repro.graphs.base import Hypercube, Line, Mesh, Torus


class TestLexicographic:
    def test_is_valid_bijection(self):
        embedding = lexicographic_embedding(Torus((3, 4)), Mesh((2, 6)))
        embedding.validate()
        assert embedding.is_bijective()

    def test_line_guest_matches_natural_sequence(self):
        embedding = lexicographic_embedding(Line(6), Mesh((2, 3)))
        assert embedding.map_index(4) == (1, 1)

    def test_size_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            lexicographic_embedding(Line(5), Mesh((2, 3)))

    def test_paper_beats_lexicographic_on_line_guest(self):
        host = Mesh((4, 2, 3))
        paper = embed(Line(24), host).dilation()
        baseline = lexicographic_embedding(Line(24), host).dilation()
        assert paper == 1
        assert baseline > paper


class TestRandom:
    def test_is_valid_and_deterministic_per_seed(self):
        a = random_embedding(Mesh((3, 4)), Torus((3, 4)), seed=7)
        b = random_embedding(Mesh((3, 4)), Torus((3, 4)), seed=7)
        c = random_embedding(Mesh((3, 4)), Torus((3, 4)), seed=8)
        a.validate()
        assert a.mapping == b.mapping
        assert a.mapping != c.mapping

    def test_size_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            random_embedding(Line(5), Mesh((2, 3)))

    def test_paper_beats_random(self):
        guest, host = Torus((4, 4)), Mesh((4, 4))
        assert embed(guest, host).dilation() <= random_embedding(guest, host).dilation()


class TestBfs:
    def test_bfs_order_starts_at_origin_and_covers_graph(self):
        order = bfs_order(Mesh((3, 3)))
        assert order[0] == (0, 0)
        assert len(order) == 9
        assert len(set(order)) == 9

    def test_is_valid_bijection(self):
        embedding = bfs_order_embedding(Mesh((3, 4)), Torus((2, 6)))
        embedding.validate()
        assert embedding.is_bijective()

    def test_size_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            bfs_order_embedding(Line(5), Mesh((2, 3)))


class TestBinaryGray:
    def test_matches_paper_construction_on_power_of_two_meshes(self):
        guest = Mesh((4, 8))
        host = Hypercube(5)
        classic = binary_gray_embedding(guest, host)
        classic.validate()
        assert classic.dilation() == 1
        ours = embed(guest, host)
        assert ours.dilation() == 1

    def test_requires_hypercube_host(self):
        with pytest.raises(UnsupportedEmbeddingError):
            binary_gray_embedding(Mesh((4, 4)), Mesh((4, 4)))

    def test_size_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            binary_gray_embedding(Mesh((4, 4)), Hypercube(5))
