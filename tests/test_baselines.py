"""Unit tests for the baseline embeddings."""

import pytest

from repro.baselines import (
    bfs_order_embedding,
    binary_gray_embedding,
    lexicographic_embedding,
    random_embedding,
)
from repro.baselines.bfs_embedding import bfs_order
from repro.core.dispatch import embed
from repro.exceptions import ShapeMismatchError, UnsupportedEmbeddingError
from repro.graphs.base import Hypercube, Line, Mesh, Torus


class TestLexicographic:
    def test_is_valid_bijection(self):
        embedding = lexicographic_embedding(Torus((3, 4)), Mesh((2, 6)))
        embedding.validate()
        assert embedding.is_bijective()

    def test_line_guest_matches_natural_sequence(self):
        embedding = lexicographic_embedding(Line(6), Mesh((2, 3)))
        assert embedding.map_index(4) == (1, 1)

    def test_guest_larger_than_host(self):
        with pytest.raises(ShapeMismatchError):
            lexicographic_embedding(Line(7), Mesh((2, 3)))

    def test_smaller_guest_is_injective(self):
        embedding = lexicographic_embedding(Line(5), Mesh((2, 3)))
        embedding.validate()
        assert len(set(embedding.mapping.values())) == 5

    def test_paper_beats_lexicographic_on_line_guest(self):
        host = Mesh((4, 2, 3))
        paper = embed(Line(24), host).dilation()
        baseline = lexicographic_embedding(Line(24), host).dilation()
        assert paper == 1
        assert baseline > paper


class TestRandom:
    def test_is_valid_and_deterministic_per_seed(self):
        a = random_embedding(Mesh((3, 4)), Torus((3, 4)), seed=7)
        b = random_embedding(Mesh((3, 4)), Torus((3, 4)), seed=7)
        c = random_embedding(Mesh((3, 4)), Torus((3, 4)), seed=8)
        a.validate()
        assert a.mapping == b.mapping
        assert a.mapping != c.mapping

    def test_guest_larger_than_host(self):
        with pytest.raises(ShapeMismatchError):
            random_embedding(Line(7), Mesh((2, 3)))

    def test_smaller_guest_is_injective(self):
        embedding = random_embedding(Line(5), Mesh((2, 3)), seed=3)
        embedding.validate()
        assert len(set(embedding.mapping.values())) == 5

    def test_paper_beats_random(self):
        guest, host = Torus((4, 4)), Mesh((4, 4))
        assert embed(guest, host).dilation() <= random_embedding(guest, host).dilation()


class TestBfs:
    def test_bfs_order_starts_at_origin_and_covers_graph(self):
        order = bfs_order(Mesh((3, 3)))
        assert order[0] == (0, 0)
        assert len(order) == 9
        assert len(set(order)) == 9

    def test_is_valid_bijection(self):
        embedding = bfs_order_embedding(Mesh((3, 4)), Torus((2, 6)))
        embedding.validate()
        assert embedding.is_bijective()

    def test_guest_larger_than_host(self):
        with pytest.raises(ShapeMismatchError):
            bfs_order_embedding(Line(7), Mesh((2, 3)))

    def test_smaller_guest_uses_bfs_ball_around_origin(self):
        embedding = bfs_order_embedding(Line(5), Mesh((2, 3)))
        embedding.validate()
        images = set(embedding.mapping.values())
        assert len(images) == 5
        assert (0, 0) in images


class TestBinaryGray:
    def test_matches_paper_construction_on_power_of_two_meshes(self):
        guest = Mesh((4, 8))
        host = Hypercube(5)
        classic = binary_gray_embedding(guest, host)
        classic.validate()
        assert classic.dilation() == 1
        ours = embed(guest, host)
        assert ours.dilation() == 1

    def test_requires_hypercube_host(self):
        with pytest.raises(UnsupportedEmbeddingError):
            binary_gray_embedding(Mesh((4, 4)), Mesh((4, 4)))

    def test_size_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            binary_gray_embedding(Mesh((4, 4)), Hypercube(5))


class TestBaselineBackendAgreement:
    """The vectorized baseline builders must equal the loop reference
    node-for-node — same contract as the paper's construction kernels."""

    PAIRS = [
        (Torus((3, 4)), Mesh((2, 6))),
        (Mesh((2, 2, 3)), Torus((3, 4))),
        (Torus((2, 2, 2)), Mesh((4, 2))),
        (Mesh((24,)), Torus((4, 2, 3))),
        (Hypercube(4), Mesh((4, 4))),
    ]

    @pytest.mark.parametrize(
        "builder",
        [lexicographic_embedding, bfs_order_embedding, random_embedding],
        ids=["lexicographic", "bfs", "random"],
    )
    def test_array_equals_loop_node_for_node(self, builder):
        from repro.runtime import use_context

        for guest, host in self.PAIRS:
            with use_context(backend="array"):
                array = builder(guest, host)
            with use_context(backend="loop"):
                loop = builder(guest, host)
            assert array.mapping == loop.mapping, (builder.__name__, guest, host)
            assert array.strategy == loop.strategy
            assert array.notes == loop.notes

    def test_bfs_rank_order_matches_queue_walk(self):
        from repro.baselines.bfs_embedding import bfs_rank_order

        for graph in [
            Torus((3, 4)),
            Mesh((2, 2, 3)),
            Hypercube(4),
            Line(17),
            Mesh((5, 5)),
            Torus((2, 3, 2, 2)),
        ]:
            queue_ranks = [graph.node_index(node) for node in bfs_order(graph)]
            assert bfs_rank_order(graph).tolist() == queue_ranks, graph
