"""Test package marker.

Making ``tests`` a package lets the test modules' ``from .conftest import
small_shapes`` imports resolve under a plain ``pytest`` invocation (pytest
then imports them as ``tests.<module>`` instead of top-level modules with no
parent package).  The shared hypothesis strategies themselves live in
:mod:`tests.strategies`; ``conftest`` re-exports them for compatibility.
"""
